// Package obs is the repository's zero-dependency observability layer: a
// concurrent metrics registry (atomic counters, gauges, and log-linear-
// bucket histograms with quantile snapshots) plus a lightweight per-query
// trace context (trace.go). Every hot plane — query, mutation/lifecycle,
// and build — updates the package-level families declared in metrics.go;
// cmd/coaxserve exposes the default registry as GET /metrics (Prometheus
// text exposition format) and expvar, and cmd/coaxstore renders the same
// names offline from a snapshot.
//
// Design constraints, in order: the hot path pays only atomic increments
// (no locks, no allocation, no formatting); the whole layer can be switched
// off with SetEnabled so its cost is measurable rather than asserted; and
// nothing outside the standard library is imported, so every internal
// package can depend on obs without cycles.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// disabled is the global kill switch, inverted so the zero value means
// enabled. Instrumentation sites poll On() before doing any work beyond an
// atomic load, which is what makes the serve bench's instrumented-versus-
// uninstrumented overhead comparison honest.
var disabled atomic.Bool

// On reports whether instrumentation is enabled (the default).
func On() bool { return !disabled.Load() }

// SetEnabled switches the whole layer on or off. Metrics keep their values
// while disabled; they just stop advancing.
func SetEnabled(v bool) { disabled.Store(!v) }

// Label is one constant key="value" pair attached to a metric at
// registration — how one family (say coax_scan_pages_total) splits into
// per-partition series without any hot-path label handling.
type Label struct {
	Key, Value string
}

// kind discriminates the exposition TYPE of a family.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// metric is the registry's view of one series.
type metric interface {
	describe() (name, help string, k kind, labels []Label)
	// writeSamples appends the series' exposition lines to b.
	writeSamples(b *strings.Builder)
	// snapshotValue returns the expvar/JSON-friendly value of the series.
	snapshotValue() any
}

// Registry holds an ordered set of metrics. The package-level constructors
// register on Default; cmd/coaxstore builds throwaway registries to render
// snapshot stats offline under the same names.
type Registry struct {
	mu      sync.RWMutex
	ordered []metric
	byKey   map[string]metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]metric)}
}

// Default is the registry every package-level family lives in.
var Default = NewRegistry()

// seriesKey uniquely identifies one series: family name plus rendered
// labels.
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	return name + "{" + renderLabels(labels, "") + "}"
}

// register adds m, or returns the already-registered series with the same
// name and labels. Re-registering a name under a different metric kind is a
// programming error and panics: two packages would be fighting over one
// exposition family.
func (r *Registry) register(name string, labels []Label, m metric) metric {
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.byKey[key]; ok {
		_, _, prevKind, _ := prev.describe()
		_, _, newKind, _ := m.describe()
		if prevKind != newKind {
			panic(fmt.Sprintf("obs: metric %s re-registered as %s, was %s", key, newKind, prevKind))
		}
		return prev
	}
	r.byKey[key] = m
	r.ordered = append(r.ordered, m)
	return m
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4): one # HELP/# TYPE header per family,
// then the samples. Families registered consecutively share one header.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	ordered := append([]metric(nil), r.ordered...)
	r.mu.RUnlock()

	var b strings.Builder
	lastFamily := ""
	for _, m := range ordered {
		name, help, k, _ := m.describe()
		if name != lastFamily {
			fmt.Fprintf(&b, "# HELP %s %s\n", name, help)
			fmt.Fprintf(&b, "# TYPE %s %s\n", name, k)
			lastFamily = name
		}
		m.writeSamples(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Snapshot returns every series' current value keyed by name{labels} —
// counters as int64, gauges as float64, histograms as a sub-map with
// count/sum/p50/p95/p99. This is what expvar publishes.
func (r *Registry) Snapshot() map[string]any {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]any, len(r.ordered))
	for _, m := range r.ordered {
		name, _, _, labels := m.describe()
		out[seriesKey(name, labels)] = m.snapshotValue()
	}
	return out
}

// renderLabels formats labels (plus an optional pre-rendered extra pair,
// for the histogram le bound) as a comma-separated list.
func renderLabels(labels []Label, extra string) string {
	parts := make([]string, 0, len(labels)+1)
	for _, l := range labels {
		parts = append(parts, l.Key+`="`+escapeLabel(l.Value)+`"`)
	}
	if extra != "" {
		parts = append(parts, extra)
	}
	return strings.Join(parts, ",")
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// sampleName renders name{labels} for one sample line.
func sampleName(name string, labels []Label, extra string) string {
	l := renderLabels(labels, extra)
	if l == "" {
		return name
	}
	return name + "{" + l + "}"
}

// --- Counter ---

// Counter is a monotonically increasing atomic int64.
type Counter struct {
	name, help string
	labels     []Label
	v          atomic.Int64
}

// NewCounter registers (or fetches) a counter on the Default registry.
func NewCounter(name, help string, labels ...Label) *Counter {
	return Default.Counter(name, help, labels...)
}

// Counter registers (or fetches) a counter on r.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{name: name, help: help, labels: labels}
	return r.register(name, labels, c).(*Counter)
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are a caller bug; they are not checked on the
// hot path).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) describe() (string, string, kind, []Label) {
	return c.name, c.help, kindCounter, c.labels
}

func (c *Counter) writeSamples(b *strings.Builder) {
	fmt.Fprintf(b, "%s %d\n", sampleName(c.name, c.labels, ""), c.v.Load())
}

func (c *Counter) snapshotValue() any { return c.v.Load() }

// --- Gauge ---

// Gauge is an atomic float64 value, optionally backed by a callback
// evaluated at read time (for values derived from live structures, like
// outlier ratios — the scrape pays the cost, not the mutation path).
type Gauge struct {
	name, help string
	labels     []Label
	bits       atomic.Uint64

	fnMu sync.RWMutex
	fn   func() float64
}

// NewGauge registers (or fetches) a settable gauge on the Default registry.
func NewGauge(name, help string, labels ...Label) *Gauge {
	return Default.Gauge(name, help, labels...)
}

// Gauge registers (or fetches) a settable gauge on r.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{name: name, help: help, labels: labels}
	return r.register(name, labels, g).(*Gauge)
}

// NewGaugeFunc registers a callback-backed gauge on the Default registry.
// Re-registering the same series replaces the callback — the latest live
// structure (say, a freshly started server's index) wins.
func NewGaugeFunc(name, help string, fn func() float64, labels ...Label) *Gauge {
	return Default.GaugeFunc(name, help, fn, labels...)
}

// GaugeFunc registers a callback-backed gauge on r.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) *Gauge {
	g := &Gauge{name: name, help: help, labels: labels}
	got := r.register(name, labels, g).(*Gauge)
	got.fnMu.Lock()
	got.fn = fn
	got.fnMu.Unlock()
	return got
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// SetFunc installs (or replaces) a callback backing the gauge — the same
// replacement semantics as re-registering through NewGaugeFunc, for gauges
// whose live structure is created after the family is declared (the latest
// structure wins).
func (g *Gauge) SetFunc(fn func() float64) {
	g.fnMu.Lock()
	g.fn = fn
	g.fnMu.Unlock()
}

// Add adds delta to the stored value.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the callback's result when one is installed, the stored
// value otherwise.
func (g *Gauge) Value() float64 {
	g.fnMu.RLock()
	fn := g.fn
	g.fnMu.RUnlock()
	if fn != nil {
		return fn()
	}
	return math.Float64frombits(g.bits.Load())
}

func (g *Gauge) describe() (string, string, kind, []Label) {
	return g.name, g.help, kindGauge, g.labels
}

func (g *Gauge) writeSamples(b *strings.Builder) {
	fmt.Fprintf(b, "%s %s\n", sampleName(g.name, g.labels, ""), formatFloat(g.Value()))
}

func (g *Gauge) snapshotValue() any { return g.Value() }

// --- Histogram ---

// Histogram is a concurrent log-linear-bucket histogram: bucket boundaries
// follow a 1-2-5 series across decades (1µs, 2µs, 5µs, 10µs, …), so
// relative error is bounded everywhere in the range without per-histogram
// tuning. Observations are three atomic operations — a bucket increment, a
// count increment, and a CAS float add to the sum — and snapshots read the
// atomics without stopping writers.
type Histogram struct {
	name, help string
	labels     []Label
	bounds     []float64 // ascending upper bounds; one overflow bucket past the end
	buckets    []atomic.Int64
	count      atomic.Int64
	sumBits    atomic.Uint64
}

// LogLinearBounds builds the 1-2-5 boundary series covering [min, max].
// min and max are clamped to positive values and rounded outward to their
// decades.
func LogLinearBounds(min, max float64) []float64 {
	if !(min > 0) {
		min = 1e-9
	}
	if max < min {
		max = min
	}
	emin := int(math.Floor(math.Log10(min) + 1e-9))
	emax := int(math.Ceil(math.Log10(max) - 1e-9))
	var out []float64
	for e := emin; e <= emax; e++ {
		for _, m := range [...]float64{1, 2, 5} {
			b := m * math.Pow(10, float64(e))
			if b > max*(1+1e-9) && len(out) > 0 {
				return out
			}
			out = append(out, b)
		}
	}
	return out
}

// NewHistogram registers (or fetches) a histogram on the Default registry
// with log-linear buckets spanning [min, max].
func NewHistogram(name, help string, min, max float64, labels ...Label) *Histogram {
	return Default.Histogram(name, help, min, max, labels...)
}

// Histogram registers (or fetches) a histogram on r.
func (r *Registry) Histogram(name, help string, min, max float64, labels ...Label) *Histogram {
	bounds := LogLinearBounds(min, max)
	h := &Histogram{
		name:    name,
		help:    help,
		labels:  labels,
		bounds:  bounds,
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
	return r.register(name, labels, h).(*Histogram)
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v; overflow lands past the end
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// HistSnapshot is a point-in-time summary of a histogram.
type HistSnapshot struct {
	Count         int64   `json:"count"`
	Sum           float64 `json:"sum"`
	P50, P95, P99 float64 `json:"-"`
}

// Snapshot summarises the histogram without stopping writers. Because
// buckets and count are read non-atomically as a group, a snapshot taken
// mid-observation may be off by the in-flight observations — fine for
// monitoring, and the price of a lock-free hot path.
func (h *Histogram) Snapshot() HistSnapshot {
	counts := make([]int64, len(h.buckets))
	var total int64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	s := HistSnapshot{Count: total, Sum: math.Float64frombits(h.sumBits.Load())}
	if total == 0 {
		return s
	}
	s.P50 = quantileFromBuckets(h.bounds, counts, total, 0.50)
	s.P95 = quantileFromBuckets(h.bounds, counts, total, 0.95)
	s.P99 = quantileFromBuckets(h.bounds, counts, total, 0.99)
	return s
}

// quantileFromBuckets finds q by walking the cumulative distribution and
// interpolating linearly inside the target bucket. The overflow bucket
// reports the last finite bound — a histogram cannot see past its range.
func quantileFromBuckets(bounds []float64, counts []int64, total int64, q float64) float64 {
	target := q * float64(total)
	cum := 0.0
	for i, c := range counts {
		prev := cum
		cum += float64(c)
		if cum < target || c == 0 {
			continue
		}
		if i >= len(bounds) {
			return bounds[len(bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		hi := bounds[i]
		return lo + (hi-lo)*(target-prev)/float64(c)
	}
	return bounds[len(bounds)-1]
}

func (h *Histogram) describe() (string, string, kind, []Label) {
	return h.name, h.help, kindHistogram, h.labels
}

func (h *Histogram) writeSamples(b *strings.Builder) {
	cum := int64(0)
	for i, bound := range h.bounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(b, "%s %d\n",
			sampleName(h.name+"_bucket", h.labels, `le="`+formatFloat(bound)+`"`), cum)
	}
	cum += h.buckets[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s %d\n", sampleName(h.name+"_bucket", h.labels, `le="+Inf"`), cum)
	fmt.Fprintf(b, "%s %s\n", sampleName(h.name+"_sum", h.labels, ""),
		formatFloat(math.Float64frombits(h.sumBits.Load())))
	fmt.Fprintf(b, "%s %d\n", sampleName(h.name+"_count", h.labels, ""), cum)
}

func (h *Histogram) snapshotValue() any {
	s := h.Snapshot()
	return map[string]any{
		"count": s.Count, "sum": s.Sum, "p50": s.P50, "p95": s.P95, "p99": s.P99,
	}
}

// formatFloat renders a float for the exposition format.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return fmt.Sprintf("%g", v)
}
