package wire

import (
	"fmt"
	"time"

	"github.com/coax-index/coax/internal/binio"
)

// Message is one protocol message: a frame type plus a binio-encoded
// payload. Decode inverts appendMessage exactly (trailing bytes are an
// error), so the set of valid payloads is closed under round-tripping.
type Message interface {
	wireType() byte
	encode(w *binio.Writer)
	decode(r *binio.Reader)
}

// appendMessage encodes m's payload.
func appendMessage(_ []byte, m Message) []byte {
	w := binio.NewWriter()
	m.encode(w)
	return w.Bytes()
}

// Decode parses one message payload. Corrupt, truncated, or
// over-long payloads return a *FrameError; no input panics and no declared
// length can allocate beyond the payload actually present (binio's bounds
// rules).
func Decode(t byte, payload []byte) (Message, error) {
	m := newMessage(t)
	if m == nil {
		return nil, &FrameError{Reason: fmt.Sprintf("unknown frame type %#x", t)}
	}
	r := binio.NewReader(payload)
	m.decode(r)
	if err := r.Close(); err != nil {
		return nil, &FrameError{Reason: fmt.Sprintf("decoding frame type %#x: %v", t, err)}
	}
	return m, nil
}

func newMessage(t byte) Message {
	switch t {
	case THello:
		return &Hello{}
	case TWelcome:
		return &Welcome{}
	case TError:
		return &Error{}
	case TCancel:
		return &Cancel{}
	case TPing:
		return &Ping{}
	case TPong:
		return &Pong{}
	case TQuery:
		return &Query{}
	case TRowChunk:
		return &RowChunk{}
	case TShardEOF:
		return &ShardEOF{}
	case TDone:
		return &Done{}
	case TAgg:
		return &Agg{}
	case TAggPart:
		return &AggPart{}
	case TMutate:
		return &Mutate{}
	case TMutAck:
		return &MutAck{}
	case TStats:
		return &Stats{}
	case TStatsRes:
		return &StatsRes{}
	}
	return nil
}

// --- handshake ---

// Hello opens every client connection: the magic constant plus the
// client's protocol version.
type Hello struct {
	Magic   uint32
	Version uint32
}

func (*Hello) wireType() byte { return THello }
func (m *Hello) encode(w *binio.Writer) {
	w.Uint32(m.Magic)
	w.Uint32(m.Version)
}
func (m *Hello) decode(r *binio.Reader) {
	m.Magic = r.Uint32()
	m.Version = r.Uint32()
}

// Welcome is the server's handshake reply: its protocol version, the row
// dimensionality it serves, and the cluster's global shard count.
type Welcome struct {
	Version uint32
	Dims    int
	Shards  int
	Rows    int64
}

func (*Welcome) wireType() byte { return TWelcome }
func (m *Welcome) encode(w *binio.Writer) {
	w.Uint32(m.Version)
	w.Int(m.Dims)
	w.Int(m.Shards)
	w.Int64(m.Rows)
}
func (m *Welcome) decode(r *binio.Reader) {
	m.Version = r.Uint32()
	m.Dims = r.Int()
	m.Shards = r.Int()
	m.Rows = r.Int64()
}

// --- control ---

// Error codes. Overloaded carries a Retry-After hint; NotFound and BadRow
// map to the engine's logical mutation errors; the rest are protocol or
// internal failures.
const (
	CodeInternal   uint8 = 1
	CodeOverloaded uint8 = 2
	CodeNotFound   uint8 = 3
	CodeBadRow     uint8 = 4
	CodeBadShard   uint8 = 5
	CodeBadRequest uint8 = 6
)

// Error aborts the request identified by ID.
type Error struct {
	ID               uint64
	Code             uint8
	RetryAfterMillis int64 // only meaningful for CodeOverloaded
	Msg              string
}

func (*Error) wireType() byte { return TError }
func (m *Error) encode(w *binio.Writer) {
	w.Uint64(m.ID)
	w.Uint64(uint64(m.Code))
	w.Int64(m.RetryAfterMillis)
	w.String(m.Msg)
}
func (m *Error) decode(r *binio.Reader) {
	m.ID = r.Uint64()
	m.Code = uint8(r.Uint64())
	m.RetryAfterMillis = r.Int64()
	m.Msg = r.String()
}

// RetryAfter converts the millisecond hint.
func (m *Error) RetryAfter() time.Duration {
	return time.Duration(m.RetryAfterMillis) * time.Millisecond
}

// Cancel asks the server to stop the request identified by ID; the server
// still terminates the request's stream with Done (or Error), so the
// client always reaches a clean frame boundary.
type Cancel struct {
	ID uint64
}

func (*Cancel) wireType() byte           { return TCancel }
func (m *Cancel) encode(w *binio.Writer) { w.Uint64(m.ID) }
func (m *Cancel) decode(r *binio.Reader) { m.ID = r.Uint64() }

// Ping is a liveness probe (circuit-breaker half-open checks).
type Ping struct{ ID uint64 }

func (*Ping) wireType() byte           { return TPing }
func (m *Ping) encode(w *binio.Writer) { w.Uint64(m.ID) }
func (m *Ping) decode(r *binio.Reader) { m.ID = r.Uint64() }

// Pong answers a Ping.
type Pong struct{ ID uint64 }

func (*Pong) wireType() byte           { return TPong }
func (m *Pong) encode(w *binio.Writer) { w.Uint64(m.ID) }
func (m *Pong) decode(r *binio.Reader) { m.ID = r.Uint64() }

// --- query plane ---

// Query asks the node to scan the listed global shards with one rectangle.
// Limit ≤ 0 scans everything; a positive limit lets the node stop each
// shard's scan after that many local matches (any Limit matching rows
// satisfy the router). The response is a stream of RowChunk frames,
// one ShardEOF per requested shard, and a final Done.
type Query struct {
	ID       uint64
	Shards   []int
	Min, Max []float64
	Limit    int64
}

func (*Query) wireType() byte { return TQuery }
func (m *Query) encode(w *binio.Writer) {
	w.Uint64(m.ID)
	w.Ints(m.Shards)
	w.Float64s(m.Min)
	w.Float64s(m.Max)
	w.Int64(m.Limit)
}
func (m *Query) decode(r *binio.Reader) {
	m.ID = r.Uint64()
	m.Shards = r.Ints()
	m.Min = r.Float64s()
	m.Max = r.Float64s()
	m.Limit = r.Int64()
}

// RowChunk carries a batch of matching rows from one global shard,
// flattened row-major (len(Rows) is a multiple of the handshake's Dims).
type RowChunk struct {
	ID    uint64
	Shard int
	Rows  []float64
}

func (*RowChunk) wireType() byte { return TRowChunk }
func (m *RowChunk) encode(w *binio.Writer) {
	w.Uint64(m.ID)
	w.Int(m.Shard)
	w.Float64s(m.Rows)
}
func (m *RowChunk) decode(r *binio.Reader) {
	m.ID = r.Uint64()
	m.Shard = r.Int()
	m.Rows = r.Float64s()
}

// ShardEOF marks the end of one shard's row stream: every RowChunk for
// that shard has been sent. Complete is false when the scan stopped early
// (limit met or cancelled) — the rows sent are a valid subset, not the
// full multiset.
type ShardEOF struct {
	ID       uint64
	Shard    int
	Rows     int64
	Complete bool
}

func (*ShardEOF) wireType() byte { return TShardEOF }
func (m *ShardEOF) encode(w *binio.Writer) {
	w.Uint64(m.ID)
	w.Int(m.Shard)
	w.Int64(m.Rows)
	w.Bool(m.Complete)
}
func (m *ShardEOF) decode(r *binio.Reader) {
	m.ID = r.Uint64()
	m.Shard = r.Int()
	m.Rows = r.Int64()
	m.Complete = r.Bool()
}

// Done terminates a request's response stream.
type Done struct {
	ID       uint64
	Complete bool
}

func (*Done) wireType() byte { return TDone }
func (m *Done) encode(w *binio.Writer) {
	w.Uint64(m.ID)
	w.Bool(m.Complete)
}
func (m *Done) decode(r *binio.Reader) {
	m.ID = r.Uint64()
	m.Complete = r.Bool()
}

// --- aggregation plane ---

// Agg asks the node to fold the listed shards' matching rows into one
// partial aggregate per shard (op/col/group follow index.AggSpec; group -1
// means ungrouped, col is ignored for COUNT). The response is one AggPart
// per requested shard and a final Done.
type Agg struct {
	ID       uint64
	Shards   []int
	Min, Max []float64
	Op       uint8
	Col      int
	Group    int
}

func (*Agg) wireType() byte { return TAgg }
func (m *Agg) encode(w *binio.Writer) {
	w.Uint64(m.ID)
	w.Ints(m.Shards)
	w.Float64s(m.Min)
	w.Float64s(m.Max)
	w.Uint64(uint64(m.Op))
	w.Int(m.Col)
	w.Int(m.Group)
}
func (m *Agg) decode(r *binio.Reader) {
	m.ID = r.Uint64()
	m.Shards = r.Ints()
	m.Min = r.Float64s()
	m.Max = r.Float64s()
	m.Op = uint8(r.Uint64())
	m.Col = r.Int()
	m.Group = r.Int()
}

// AggCell is one running aggregate on the wire (index.AggCell plus the
// group key it belongs to; Key is unused for ungrouped parts).
type AggCell struct {
	Key   float64
	Count int64
	Sum   float64
	Min   float64
	Max   float64
}

// AggPart is one shard's partial aggregate: a single cell when ungrouped,
// one cell per group key (ascending) when grouped. Complete is false when
// the fold was cut short by cancellation.
type AggPart struct {
	ID       uint64
	Shard    int
	Grouped  bool
	Complete bool
	Cells    []AggCell
}

func (*AggPart) wireType() byte { return TAggPart }
func (m *AggPart) encode(w *binio.Writer) {
	w.Uint64(m.ID)
	w.Int(m.Shard)
	w.Bool(m.Grouped)
	w.Bool(m.Complete)
	w.Uint64(uint64(len(m.Cells)))
	for _, c := range m.Cells {
		w.Float64(c.Key)
		w.Int64(c.Count)
		w.Float64(c.Sum)
		w.Float64(c.Min)
		w.Float64(c.Max)
	}
}
func (m *AggPart) decode(r *binio.Reader) {
	m.ID = r.Uint64()
	m.Shard = r.Int()
	m.Grouped = r.Bool()
	m.Complete = r.Bool()
	n := int(r.Uint64())
	// Bound the allocation by the bytes actually present (40 per cell).
	if max := r.Remaining() / 40; n > max {
		n = max + 1 // one over: forces a clean short-read error from binio
	}
	if n <= 0 {
		return
	}
	m.Cells = make([]AggCell, 0, n)
	for i := 0; i < n; i++ {
		m.Cells = append(m.Cells, AggCell{
			Key:   r.Float64(),
			Count: r.Int64(),
			Sum:   r.Float64(),
			Min:   r.Float64(),
			Max:   r.Float64(),
		})
	}
}

// --- mutation plane ---

// Mutation ops.
const (
	MutInsert uint8 = 1
	MutDelete uint8 = 2
	MutUpdate uint8 = 3
)

// Mutate applies one mutation to one global shard the node hosts. Row is
// the inserted/deleted row (the old row for update); New is only present
// for update.
type Mutate struct {
	ID    uint64
	Op    uint8
	Shard int
	Row   []float64
	New   []float64
}

func (*Mutate) wireType() byte { return TMutate }
func (m *Mutate) encode(w *binio.Writer) {
	w.Uint64(m.ID)
	w.Uint64(uint64(m.Op))
	w.Int(m.Shard)
	w.Float64s(m.Row)
	w.Float64s(m.New)
}
func (m *Mutate) decode(r *binio.Reader) {
	m.ID = r.Uint64()
	m.Op = uint8(r.Uint64())
	m.Shard = r.Int()
	m.Row = r.Float64s()
	m.New = r.Float64s()
}

// MutAck acknowledges a successful mutation; Rows is the node's live row
// count afterwards.
type MutAck struct {
	ID   uint64
	Rows int64
}

func (*MutAck) wireType() byte { return TMutAck }
func (m *MutAck) encode(w *binio.Writer) {
	w.Uint64(m.ID)
	w.Int64(m.Rows)
}
func (m *MutAck) decode(r *binio.Reader) {
	m.ID = r.Uint64()
	m.Rows = r.Int64()
}

// --- stats plane ---

// Stats asks the node for its shape.
type Stats struct{ ID uint64 }

func (*Stats) wireType() byte           { return TStats }
func (m *Stats) encode(w *binio.Writer) { w.Uint64(m.ID) }
func (m *Stats) decode(r *binio.Reader) { m.ID = r.Uint64() }

// StatsRes reports the node's shape: total live rows, the global shards it
// hosts, and each hosted shard's live row count (aligned with Hosted).
type StatsRes struct {
	ID        uint64
	Rows      int64
	Hosted    []int
	ShardRows []int64
}

func (*StatsRes) wireType() byte { return TStatsRes }
func (m *StatsRes) encode(w *binio.Writer) {
	w.Uint64(m.ID)
	w.Int64(m.Rows)
	w.Ints(m.Hosted)
	w.Int64s(m.ShardRows)
}
func (m *StatsRes) decode(r *binio.Reader) {
	m.ID = r.Uint64()
	m.Rows = r.Int64()
	m.Hosted = r.Ints()
	m.ShardRows = r.Int64s()
}

// --- handshake helpers ---

// ClientHandshake sends Hello and validates the Welcome.
func ClientHandshake(c *Conn) (*Welcome, error) {
	if err := c.Send(&Hello{Magic: Magic, Version: ProtocolVersion}); err != nil {
		return nil, err
	}
	m, err := c.Recv()
	if err != nil {
		return nil, fmt.Errorf("wire: handshake: %w", err)
	}
	switch w := m.(type) {
	case *Welcome:
		if w.Version != ProtocolVersion {
			return nil, fmt.Errorf("wire: protocol version mismatch: node speaks %d, client speaks %d", w.Version, ProtocolVersion)
		}
		return w, nil
	case *Error:
		return nil, fmt.Errorf("wire: handshake rejected: %s", w.Msg)
	default:
		return nil, fmt.Errorf("wire: handshake: unexpected %T reply", m)
	}
}

// ServerHandshake validates the Hello and answers Welcome. A bad magic or
// version mismatch is answered with an Error frame before failing, so a
// confused client sees why instead of a dropped connection.
func ServerHandshake(c *Conn, dims, shards int, rows int64) error {
	m, err := c.Recv()
	if err != nil {
		return fmt.Errorf("wire: handshake: %w", err)
	}
	h, ok := m.(*Hello)
	if !ok {
		c.Send(&Error{Code: CodeBadRequest, Msg: "expected Hello"})
		return fmt.Errorf("wire: handshake: unexpected %T", m)
	}
	if h.Magic != Magic {
		c.Send(&Error{Code: CodeBadRequest, Msg: "bad magic"})
		return fmt.Errorf("wire: handshake: bad magic %#x", h.Magic)
	}
	if h.Version != ProtocolVersion {
		c.Send(&Error{Code: CodeBadRequest, Msg: fmt.Sprintf("protocol version %d unsupported (node speaks %d)", h.Version, ProtocolVersion)})
		return fmt.Errorf("wire: handshake: client version %d, node speaks %d", h.Version, ProtocolVersion)
	}
	return c.Send(&Welcome{Version: ProtocolVersion, Dims: dims, Shards: shards, Rows: rows})
}
