package wire

import (
	"bytes"
	"io"
	"testing"
)

// FuzzWireDecode feeds arbitrary bytes through both protocol layers: the
// frame reader (length + checksum) and, when a frame survives framing, the
// message decoder. Nothing may panic, and no input may drive an allocation
// beyond MaxFrame — corrupt streams must surface as errors.
//
// Valid frames are also re-encoded to check the codec round-trips: a
// payload the decoder accepts must encode back to the exact same bytes
// (the message layer has no don't-care bits).
func FuzzWireDecode(f *testing.F) {
	for _, m := range []Message{
		&Hello{Magic: Magic, Version: ProtocolVersion},
		&Welcome{Version: 1, Dims: 4, Shards: 16, Rows: 1000},
		&Query{ID: 1, Shards: []int{0, 1}, Min: []float64{0, 0}, Max: []float64{1, 1}, Limit: 10},
		&RowChunk{ID: 1, Shard: 0, Rows: []float64{1, 2, 3, 4}},
		&ShardEOF{ID: 1, Shard: 0, Rows: 2, Complete: true},
		&Done{ID: 1, Complete: true},
		&Agg{ID: 2, Shards: []int{0}, Min: []float64{0}, Max: []float64{1}, Op: 1, Col: 0, Group: -1},
		&AggPart{ID: 2, Shard: 0, Grouped: true, Complete: true, Cells: []AggCell{{Key: 1, Count: 2, Sum: 3, Min: 1, Max: 2}}},
		&Mutate{ID: 3, Op: MutInsert, Shard: 1, Row: []float64{5, 6}},
		&MutAck{ID: 3, Rows: 11},
		&Error{ID: 4, Code: CodeOverloaded, RetryAfterMillis: 100, Msg: "busy"},
		&Cancel{ID: 5},
		&Stats{ID: 6},
		&StatsRes{ID: 6, Rows: 100, Hosted: []int{0}, ShardRows: []int64{100}},
	} {
		var buf bytes.Buffer
		if err := NewConn(&buf).Send(m); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	// Adversarial seeds: truncated header, absurd length, zero length.
	f.Add([]byte{5, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x10})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		c := NewConn(struct {
			io.Reader
			io.Writer
		}{Reader: bytes.NewReader(data), Writer: io.Discard})
		for {
			ft, payload, err := c.ReadFrame()
			if err != nil {
				if err != io.EOF && err != io.ErrUnexpectedEOF {
					if _, ok := err.(*FrameError); !ok {
						t.Fatalf("ReadFrame: unexpected error type %T: %v", err, err)
					}
				}
				return
			}
			m, err := Decode(ft, payload)
			if err != nil {
				if _, ok := err.(*FrameError); !ok {
					t.Fatalf("Decode: unexpected error type %T: %v", err, err)
				}
				continue
			}
			if m.wireType() != ft {
				t.Fatalf("decoded %T reports type %#x, frame said %#x", m, m.wireType(), ft)
			}
			if got := appendMessage(nil, m); !bytes.Equal(got, payload) {
				t.Fatalf("re-encode of %T differs from accepted payload:\n got  %x\n want %x", m, got, payload)
			}
		}
	})
}
