// Package wire is the cluster's node-to-node binary protocol: a
// length-prefixed, CRC-checked, versioned frame stream that replaces JSON
// on the router↔node path. Every frame is
//
//	uint32 LE  n        — length of what follows before the checksum
//	uint8      type     — frame type (THello, TQuery, TRowChunk, ...)
//	n-1 bytes  payload  — the message body, encoded with internal/binio
//	uint32 LE  crc      — CRC-32C (Castagnoli) over type+payload
//
// so a corrupted or truncated stream surfaces as an error from ReadFrame,
// never as a panic or a giant allocation: n is bounded by MaxFrame before
// anything is allocated, and payload decoding inherits binio's strict
// bounds checking (declared lengths are clamped by the bytes actually
// present).
//
// A connection opens with a handshake — the client sends Hello (magic +
// protocol version), the server answers Welcome (version, row
// dimensionality, global shard count) — after which frames flow in both
// directions: requests and Cancel from the client, streamed RowChunk /
// ShardEOF / AggPart / acks / Error from the server. Writes are
// frame-atomic (one mutex per connection), so a response stream and an
// asynchronous Cancel can share the wire safely.
package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sync"

	"github.com/coax-index/coax/internal/obs"
)

const (
	// ProtocolVersion is the wire format version carried in the handshake;
	// both sides must agree exactly (there is no cross-version negotiation
	// yet — a mismatch is a handshake error, not silent misdecoding).
	ProtocolVersion = 1

	// Magic opens every Hello payload ("COAX" little-endian), so a stray
	// HTTP client or port scanner is rejected at the first frame.
	Magic = 0x58414F43

	// MaxFrame bounds a frame's length field. ReadFrame rejects anything
	// larger before allocating, so a corrupt length cannot drive an
	// oversized allocation.
	MaxFrame = 8 << 20
)

// Frame types. Handshake and control frames share the low block; request
// and response frames are grouped by plane.
const (
	THello    byte = 0x01
	TWelcome  byte = 0x02
	TError    byte = 0x03
	TCancel   byte = 0x04
	TPing     byte = 0x05
	TPong     byte = 0x06
	TQuery    byte = 0x10
	TRowChunk byte = 0x11
	TShardEOF byte = 0x12
	TDone     byte = 0x13
	TAgg      byte = 0x20
	TAggPart  byte = 0x21
	TMutate   byte = 0x30
	TMutAck   byte = 0x31
	TStats    byte = 0x40
	TStatsRes byte = 0x41
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Conn frames a bidirectional byte stream. Reads must come from a single
// goroutine; writes are internally serialized, so any number of goroutines
// may send (the response stream and an async Cancel share one connection).
type Conn struct {
	br *bufio.Reader

	wmu sync.Mutex
	bw  *bufio.Writer
	wrr error // sticky write error

	maxFrame int
}

// NewConn frames rw. The caller keeps ownership of the underlying
// connection (deadlines, Close).
func NewConn(rw io.ReadWriter) *Conn {
	return &Conn{
		br:       bufio.NewReaderSize(rw, 64<<10),
		bw:       bufio.NewWriterSize(rw, 64<<10),
		maxFrame: MaxFrame,
	}
}

// WriteFrame sends one frame and flushes it. Safe for concurrent use; the
// first write error sticks and is returned by every subsequent call.
func (c *Conn) WriteFrame(t byte, payload []byte) error {
	n := len(payload) + 1
	if n > c.maxFrame {
		return fmt.Errorf("wire: frame payload %d bytes exceeds MaxFrame %d", len(payload), c.maxFrame)
	}
	crc := crc32.Update(crc32.Checksum([]byte{t}, castagnoli), castagnoli, payload)

	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.wrr != nil {
		return c.wrr
	}
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(n))
	hdr[4] = t
	_, err := c.bw.Write(hdr[:])
	if err == nil {
		_, err = c.bw.Write(payload)
	}
	if err == nil {
		var tail [4]byte
		binary.LittleEndian.PutUint32(tail[:], crc)
		_, err = c.bw.Write(tail[:])
	}
	if err == nil {
		err = c.bw.Flush()
	}
	if err != nil {
		c.wrr = err
		return err
	}
	obs.WireBytesSent.Add(int64(n) + 8)
	obs.WireFramesSent.Inc()
	return nil
}

// ReadFrame reads one frame, verifying length bounds and the checksum. A
// short read surfaces as io.ErrUnexpectedEOF (io.EOF only at a clean frame
// boundary); a checksum or bounds failure is a *FrameError.
func (c *Conn) ReadFrame() (byte, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n < 1 || n > uint32(c.maxFrame) {
		return 0, nil, &FrameError{Reason: fmt.Sprintf("frame length %d out of range [1,%d]", n, c.maxFrame)}
	}
	body := make([]byte, n+4)
	if _, err := io.ReadFull(c.br, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	want := binary.LittleEndian.Uint32(body[n:])
	if got := crc32.Checksum(body[:n], castagnoli); got != want {
		return 0, nil, &FrameError{Reason: fmt.Sprintf("checksum mismatch: got %#x want %#x", got, want)}
	}
	obs.WireBytesRecv.Add(int64(n) + 8)
	obs.WireFramesRecv.Inc()
	return body[0], body[1:n], nil
}

// FrameError reports a malformed frame (bad length, bad checksum, unknown
// type, or an undecodable payload). It is a protocol-level failure: the
// stream is desynchronized and the connection should be dropped.
type FrameError struct {
	Reason string
}

func (e *FrameError) Error() string { return "wire: " + e.Reason }

// Send encodes and writes one message.
func (c *Conn) Send(m Message) error {
	return c.WriteFrame(m.wireType(), appendMessage(nil, m))
}

// Recv reads and decodes one message.
func (c *Conn) Recv() (Message, error) {
	t, payload, err := c.ReadFrame()
	if err != nil {
		return nil, err
	}
	return Decode(t, payload)
}
