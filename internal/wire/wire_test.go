package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"net"
	"reflect"
	"sync"
	"testing"
)

// duplex is an in-memory bidirectional stream for handshake tests.
func duplex(t *testing.T) (client, server net.Conn) {
	t.Helper()
	c, s := net.Pipe()
	t.Cleanup(func() { c.Close(); s.Close() })
	return c, s
}

func allMessages() []Message {
	return []Message{
		&Hello{Magic: Magic, Version: ProtocolVersion},
		&Welcome{Version: 1, Dims: 4, Shards: 16, Rows: 123456},
		&Error{ID: 7, Code: CodeOverloaded, RetryAfterMillis: 250, Msg: "drain"},
		&Cancel{ID: 42},
		&Ping{ID: 1},
		&Pong{ID: 1},
		&Query{ID: 9, Shards: []int{0, 3, 5}, Min: []float64{0, math.Inf(-1)}, Max: []float64{10, math.Inf(1)}, Limit: 100},
		&RowChunk{ID: 9, Shard: 3, Rows: []float64{1, 2, 3, 4, 5, 6, 7, 8}},
		&ShardEOF{ID: 9, Shard: 3, Rows: 2, Complete: true},
		&Done{ID: 9, Complete: true},
		&Agg{ID: 11, Shards: []int{1}, Min: []float64{0}, Max: []float64{1}, Op: 2, Col: 1, Group: -1},
		&AggPart{ID: 11, Shard: 1, Grouped: true, Complete: true, Cells: []AggCell{
			{Key: 1, Count: 3, Sum: 6, Min: 1, Max: 3},
			{Key: 2, Count: 1, Sum: 9, Min: 9, Max: 9},
		}},
		&Mutate{ID: 13, Op: MutUpdate, Shard: 2, Row: []float64{1, 2}, New: []float64{3, 4}},
		&MutAck{ID: 13, Rows: 999},
		&Stats{ID: 15},
		&StatsRes{ID: 15, Rows: 1000, Hosted: []int{0, 2}, ShardRows: []int64{400, 600}},
	}
}

func TestMessageRoundTrip(t *testing.T) {
	for _, m := range allMessages() {
		payload := appendMessage(nil, m)
		got, err := Decode(m.wireType(), payload)
		if err != nil {
			t.Fatalf("%T: decode: %v", m, err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Errorf("%T round trip mismatch:\n sent %+v\n got  %+v", m, m, got)
		}
	}
}

func TestConnRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	msgs := allMessages()
	for _, m := range msgs {
		if err := c.Send(m); err != nil {
			t.Fatalf("send %T: %v", m, err)
		}
	}
	r := NewConn(&buf)
	for _, want := range msgs {
		got, err := r.Recv()
		if err != nil {
			t.Fatalf("recv %T: %v", want, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("recv mismatch: sent %+v got %+v", want, got)
		}
	}
	if _, err := r.Recv(); err != io.EOF {
		t.Errorf("after last frame: got %v, want io.EOF", err)
	}
}

func TestReadFrameCorruption(t *testing.T) {
	frame := func(m Message) []byte {
		var buf bytes.Buffer
		if err := NewConn(&buf).Send(m); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	base := frame(&Cancel{ID: 7})

	t.Run("bit flip fails checksum", func(t *testing.T) {
		for i := 4; i < len(base); i++ { // skip the length word: covered below
			b := append([]byte(nil), base...)
			b[i] ^= 0x40
			_, _, err := NewConn(bytes.NewBuffer(b)).ReadFrame()
			var fe *FrameError
			if !errors.As(err, &fe) {
				t.Fatalf("flip at %d: got %v, want *FrameError", i, err)
			}
		}
	})

	t.Run("truncation is ErrUnexpectedEOF", func(t *testing.T) {
		for i := 1; i < len(base); i++ {
			_, _, err := NewConn(bytes.NewBuffer(base[:i])).ReadFrame()
			if i < 4 {
				if err != io.ErrUnexpectedEOF && err != io.EOF {
					t.Fatalf("cut at %d: got %v", i, err)
				}
				continue
			}
			if err != io.ErrUnexpectedEOF {
				t.Fatalf("cut at %d: got %v, want io.ErrUnexpectedEOF", i, err)
			}
		}
	})

	t.Run("oversized length rejected before allocation", func(t *testing.T) {
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], uint32(MaxFrame+1))
		_, _, err := NewConn(bytes.NewBuffer(hdr[:])).ReadFrame()
		var fe *FrameError
		if !errors.As(err, &fe) {
			t.Fatalf("got %v, want *FrameError", err)
		}
	})

	t.Run("zero length rejected", func(t *testing.T) {
		_, _, err := NewConn(bytes.NewBuffer(make([]byte, 8))).ReadFrame()
		var fe *FrameError
		if !errors.As(err, &fe) {
			t.Fatalf("got %v, want *FrameError", err)
		}
	})
}

func TestDecodeRejectsMalformedPayloads(t *testing.T) {
	cases := []struct {
		name    string
		t       byte
		payload []byte
	}{
		{"unknown type", 0xEE, []byte{1, 2, 3}},
		{"truncated payload", TQuery, appendMessage(nil, &Query{ID: 1})[:3]},
		{"trailing bytes", TCancel, append(appendMessage(nil, &Cancel{ID: 1}), 0)},
		{"declared slice too long", TRowChunk, func() []byte {
			b := appendMessage(nil, &RowChunk{ID: 1, Shard: 0, Rows: []float64{1}})
			// Overwrite the row-count word (after ID and Shard) with a huge value.
			binary.LittleEndian.PutUint64(b[16:24], 1<<40)
			return b
		}()},
		{"aggpart cell count lies", TAggPart, func() []byte {
			b := appendMessage(nil, &AggPart{ID: 1, Shard: 0, Cells: []AggCell{{Count: 1}}})
			binary.LittleEndian.PutUint64(b[18:26], 1<<40)
			return b
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, err := Decode(tc.t, tc.payload)
			if err == nil {
				t.Fatalf("decoded %+v from malformed payload", m)
			}
			var fe *FrameError
			if !errors.As(err, &fe) {
				t.Fatalf("got %v, want *FrameError", err)
			}
		})
	}
}

func TestHandshake(t *testing.T) {
	cc, sc := duplex(t)
	done := make(chan error, 1)
	go func() { done <- ServerHandshake(NewConn(sc), 4, 16, 777) }()
	w, err := ClientHandshake(NewConn(cc))
	if err != nil {
		t.Fatalf("client handshake: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("server handshake: %v", err)
	}
	if w.Dims != 4 || w.Shards != 16 || w.Rows != 777 || w.Version != ProtocolVersion {
		t.Errorf("welcome = %+v", w)
	}
}

func TestHandshakeRejectsBadMagic(t *testing.T) {
	cc, sc := duplex(t)
	done := make(chan error, 1)
	go func() { done <- ServerHandshake(NewConn(sc), 4, 16, 0) }()
	c := NewConn(cc)
	if err := c.Send(&Hello{Magic: 0xDEAD, Version: ProtocolVersion}); err != nil {
		t.Fatal(err)
	}
	m, err := c.Recv()
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	if e, ok := m.(*Error); !ok || e.Code != CodeBadRequest {
		t.Errorf("got %+v, want *Error{Code: CodeBadRequest}", m)
	}
	if err := <-done; err == nil {
		t.Error("server accepted bad magic")
	}
}

func TestHandshakeRejectsVersionMismatch(t *testing.T) {
	cc, sc := duplex(t)
	go func() {
		c := NewConn(sc)
		c.Recv()
		c.Send(&Welcome{Version: ProtocolVersion + 1})
	}()
	if _, err := ClientHandshake(NewConn(cc)); err == nil {
		t.Error("client accepted version mismatch")
	}
}

// TestConcurrentWriters exercises the frame-atomic write path: many
// goroutines share one Conn and every frame must arrive intact.
func TestConcurrentWriters(t *testing.T) {
	pr, pw := io.Pipe()
	c := NewConn(struct {
		io.Reader
		io.Writer
	}{Reader: pr, Writer: pw})

	const writers, per = 8, 50
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				if err := c.Send(&RowChunk{ID: uint64(id), Shard: j, Rows: []float64{float64(id), float64(j)}}); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(i)
	}
	go func() { wg.Wait(); pw.Close() }()

	r := NewConn(struct {
		io.Reader
		io.Writer
	}{Reader: pr, Writer: io.Discard})
	got := 0
	for {
		m, err := r.Recv()
		if err == io.EOF || err == io.ErrClosedPipe {
			break
		}
		if err != nil {
			t.Fatalf("recv after %d frames: %v", got, err)
		}
		ch := m.(*RowChunk)
		if ch.Rows[0] != float64(ch.ID) || ch.Rows[1] != float64(ch.Shard) {
			t.Fatalf("interleaved frame: %+v", ch)
		}
		got++
	}
	if got != writers*per {
		t.Errorf("received %d frames, want %d", got, writers*per)
	}
}

func TestWriteFrameRejectsOversizedPayload(t *testing.T) {
	c := NewConn(&bytes.Buffer{})
	if err := c.WriteFrame(TRowChunk, make([]byte, MaxFrame)); err == nil {
		t.Error("oversized payload accepted")
	}
}
