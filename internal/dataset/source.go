package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
)

// DefaultChunkRows is the chunk granularity sources use when the caller
// passes 0: large enough to amortise per-chunk overhead, small enough that
// one chunk of a wide table stays comfortably inside cache.
const DefaultChunkRows = 8192

// Chunk is one block of rows handed out by a RowSource. Data is row-major
// (Rows()*Cols values) and is only valid until the next call to Next — a
// source may reuse the backing buffer. Consumers that retain rows must copy
// them.
type Chunk struct {
	Cols int
	Data []float64
}

// Rows reports the number of rows in the chunk.
func (c Chunk) Rows() int {
	if c.Cols == 0 {
		return 0
	}
	return len(c.Data) / c.Cols
}

// Row returns row i of the chunk, aliasing the chunk buffer.
func (c Chunk) Row(i int) []float64 {
	return c.Data[i*c.Cols : (i+1)*c.Cols : (i+1)*c.Cols]
}

// RowSource is the streaming ingestion contract: a named column set plus a
// sequence of row chunks terminated by io.EOF. Implementations may also
// provide SizeHint (expected total rows) and Reset (replayable sources);
// consumers discover both through interface assertion.
type RowSource interface {
	// Columns returns the column names, fixed for the life of the source.
	Columns() []string
	// Next returns the next chunk of rows, or io.EOF when the source is
	// exhausted. The chunk's buffer may be reused by the following call.
	Next() (Chunk, error)
}

// SizeHinter is implemented by sources that can estimate how many rows
// remain to be read in total (including rows already delivered). A hint of
// -1 means unknown; hints may sharpen as the source is consumed.
type SizeHinter interface {
	SizeHint() int
}

// Resetter is implemented by replayable sources: Reset rewinds the source
// to its beginning so it can be streamed again (the two-pass sampled build
// uses this to detect dependencies on pass one and place rows on pass two).
type Resetter interface {
	Reset() error
}

// ConditionalResetter is implemented by source types whose replayability
// depends on their backing — a CSV source can rewind a file but not a
// plain reader. Replayable reports whether Reset would succeed.
type ConditionalResetter interface {
	Replayable() bool
}

// CanReset reports whether src supports Reset right now: it must implement
// Resetter, and a ConditionalResetter must also answer Replayable.
func CanReset(src RowSource) bool {
	if _, ok := src.(Resetter); !ok {
		return false
	}
	if cr, ok := src.(ConditionalResetter); ok && !cr.Replayable() {
		return false
	}
	return true
}

// SizeHint reports src's row-count estimate, or -1 when the source does not
// know its size.
func SizeHint(src RowSource) int {
	if h, ok := src.(SizeHinter); ok {
		return h.SizeHint()
	}
	return -1
}

// TableSource streams an in-memory table in chunks without copying: every
// chunk aliases the table buffer. It is replayable and knows its size.
type TableSource struct {
	t     *Table
	chunk int
	pos   int // rows already delivered
}

// NewTableSource wraps t as a RowSource. chunkRows ≤ 0 selects
// DefaultChunkRows.
func NewTableSource(t *Table, chunkRows int) *TableSource {
	if chunkRows <= 0 {
		chunkRows = DefaultChunkRows
	}
	return &TableSource{t: t, chunk: chunkRows}
}

// Columns implements RowSource.
func (s *TableSource) Columns() []string { return s.t.Cols }

// Next implements RowSource; chunks alias the table buffer.
func (s *TableSource) Next() (Chunk, error) {
	n := s.t.Len()
	if s.pos >= n {
		return Chunk{}, io.EOF
	}
	hi := s.pos + s.chunk
	if hi > n {
		hi = n
	}
	dims := s.t.Dims()
	c := Chunk{Cols: dims, Data: s.t.Data[s.pos*dims : hi*dims]}
	s.pos = hi
	return c, nil
}

// SizeHint implements SizeHinter exactly.
func (s *TableSource) SizeHint() int { return s.t.Len() }

// Reset implements Resetter.
func (s *TableSource) Reset() error { s.pos = 0; return nil }

// Unread returns the underlying table when nothing has been consumed yet,
// letting Materialize hand it back without a copy; otherwise nil.
func (s *TableSource) Unread() *Table {
	if s.pos == 0 {
		return s.t
	}
	return nil
}

// CSVSource streams CSV data with a header row, parsing chunkRows rows at a
// time into a reused buffer; every field must parse as a float64. A source
// over an *os.File (see OpenCSVFile) estimates its total row count from the
// file size and the bytes consumed per row so far, and is replayable.
type CSVSource struct {
	cr    *csv.Reader
	cols  []string
	chunk int
	buf   []float64
	line  int // last line delivered; header is line 1

	f         *os.File // non-nil for OpenCSVFile sources (Reset/Close/SizeHint)
	sizeBytes int64    // total file size, or -1
	rows      int      // rows delivered so far
	spilled   bool     // temp-file source (SpillCSV): Close also removes it
}

// NewCSVSource starts streaming CSV from r. The header row is read (and
// validated) immediately. chunkRows ≤ 0 selects DefaultChunkRows.
func NewCSVSource(r io.Reader, chunkRows int) (*CSVSource, error) {
	if chunkRows <= 0 {
		chunkRows = DefaultChunkRows
	}
	s := &CSVSource{chunk: chunkRows, sizeBytes: -1}
	if err := s.start(r); err != nil {
		return nil, err
	}
	return s, nil
}

// OpenCSVFile opens path as a replayable CSV source whose SizeHint sharpens
// as rows are consumed. The caller owns Close.
func OpenCSVFile(path string, chunkRows int) (*CSVSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	s, err := NewCSVSource(f, chunkRows)
	if err != nil {
		f.Close()
		return nil, err
	}
	s.f = f
	s.sizeBytes = fi.Size()
	return s, nil
}

// start (re)initialises the reader state over r and consumes the header.
func (s *CSVSource) start(r io.Reader) error {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	// A single empty header field (`""`) is rejected: encoding/csv writes
	// that record as a blank line, which readers skip, so a table built
	// from it could never round-trip through WriteCSV (found by fuzzing).
	if len(header) == 1 && header[0] == "" {
		return fmt.Errorf("dataset: CSV header is a single empty field")
	}
	if s.cols == nil {
		s.cols = make([]string, len(header))
		copy(s.cols, header)
	}
	s.cr = cr
	s.line = 1
	s.rows = 0
	return nil
}

// Columns implements RowSource.
func (s *CSVSource) Columns() []string { return s.cols }

// Next implements RowSource: it parses up to chunkRows records into the
// reused chunk buffer.
func (s *CSVSource) Next() (Chunk, error) {
	dims := len(s.cols)
	if s.buf == nil {
		s.buf = make([]float64, 0, s.chunk*dims)
	}
	s.buf = s.buf[:0]
	for n := 0; n < s.chunk; n++ {
		rec, err := s.cr.Read()
		if err == io.EOF {
			break
		}
		s.line++
		if err != nil {
			return Chunk{}, fmt.Errorf("dataset: reading CSV line %d: %w", s.line, err)
		}
		if len(rec) != dims {
			return Chunk{}, fmt.Errorf("dataset: CSV line %d has %d fields, want %d", s.line, len(rec), dims)
		}
		for i, f := range rec {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return Chunk{}, fmt.Errorf("dataset: CSV line %d field %q: %w", s.line, s.cols[i], err)
			}
			s.buf = append(s.buf, v)
		}
	}
	if len(s.buf) == 0 {
		return Chunk{}, io.EOF
	}
	s.rows += len(s.buf) / dims
	return Chunk{Cols: dims, Data: s.buf}, nil
}

// SizeHint implements SizeHinter: total rows estimated from the file size
// and the average bytes per row consumed so far; -1 for non-file sources or
// before the first chunk.
func (s *CSVSource) SizeHint() int {
	if s.sizeBytes < 0 || s.rows == 0 {
		return -1
	}
	consumed := s.cr.InputOffset()
	if consumed <= 0 {
		return -1
	}
	perRow := float64(consumed) / float64(s.rows) // header amortised away at scale
	est := int(float64(s.sizeBytes)/perRow) + 1
	if est < s.rows {
		est = s.rows
	}
	return est
}

// Replayable implements ConditionalResetter: only file-backed sources can
// rewind.
func (s *CSVSource) Replayable() bool { return s.f != nil }

// Reset implements Resetter for file-backed sources; over a plain
// io.Reader it fails (see Replayable).
func (s *CSVSource) Reset() error {
	if s.f == nil {
		return fmt.Errorf("dataset: CSV source is not replayable (not file-backed)")
	}
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	return s.start(s.f)
}

// Close releases the file of an OpenCSVFile source (removing it first if
// the source spilled it itself — see SpillCSV); it is a no-op for
// reader-backed sources.
func (s *CSVSource) Close() error {
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	if s.spilled {
		if rerr := os.Remove(s.f.Name()); err == nil {
			err = rerr
		}
	}
	return err
}

// SpillCSV copies r (typically stdin) to a temporary CSV file and opens it
// as a replayable source whose Close also removes the file — how a CLI
// turns a one-shot pipe into an input the sampled build can
// reservoir-sample uniformly instead of training on a biased prefix. It
// returns the byte count spilled for logging.
func SpillCSV(r io.Reader, chunkRows int) (*CSVSource, int64, error) {
	tmp, err := os.CreateTemp("", "coax-spill-*.csv")
	if err != nil {
		return nil, 0, err
	}
	path := tmp.Name()
	fail := func(err error) (*CSVSource, int64, error) {
		tmp.Close()
		os.Remove(path)
		return nil, 0, err
	}
	n, err := io.Copy(tmp, r)
	if err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		return fail(err)
	}
	src, err := OpenCSVFile(path, chunkRows)
	if err != nil {
		os.Remove(path)
		return nil, 0, err
	}
	src.spilled = true
	return src, n, nil
}

// funcSource adapts a deterministic row generator to RowSource. newGen must
// return a fresh emitter positioned at row 0 — Reset replays by
// regenerating, which is exact for seeded generators.
type funcSource struct {
	cols   []string
	n      int
	chunk  int
	buf    []float64
	newGen func() func(row []float64) bool
	emit   func(row []float64) bool
	done   bool
}

// NewFuncSource wraps a generator as a replayable RowSource of n expected
// rows. newGen returns an emitter that fills one row per call and reports
// false when exhausted.
func NewFuncSource(cols []string, n, chunkRows int, newGen func() func(row []float64) bool) RowSource {
	if chunkRows <= 0 {
		chunkRows = DefaultChunkRows
	}
	return &funcSource{cols: cols, n: n, chunk: chunkRows, newGen: newGen}
}

func (s *funcSource) Columns() []string { return s.cols }

func (s *funcSource) SizeHint() int { return s.n }

func (s *funcSource) Reset() error { s.emit = nil; s.done = false; return nil }

func (s *funcSource) Next() (Chunk, error) {
	if s.done {
		return Chunk{}, io.EOF
	}
	if s.emit == nil {
		s.emit = s.newGen()
	}
	dims := len(s.cols)
	if s.buf == nil {
		s.buf = make([]float64, s.chunk*dims)
	}
	filled := 0
	for filled < s.chunk {
		if !s.emit(s.buf[filled*dims : (filled+1)*dims]) {
			s.done = true
			break
		}
		filled++
	}
	if filled == 0 {
		return Chunk{}, io.EOF
	}
	return Chunk{Cols: dims, Data: s.buf[:filled*dims]}, nil
}

// Materialize drains src into an in-memory table, preallocating from the
// source's size hint. A fresh TableSource is returned as its underlying
// table without copying.
func Materialize(src RowSource) (*Table, error) {
	if ts, ok := src.(*TableSource); ok {
		if t := ts.Unread(); t != nil {
			return t, nil
		}
	}
	t := NewTable(src.Columns())
	grown := 0
	for {
		c, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if hint := SizeHint(src); hint > grown {
			t.Grow(hint - t.Len())
			grown = hint
		}
		t.Data = append(t.Data, c.Data...)
	}
	return t, nil
}

// StreamCSV writes src as CSV (header plus every row) to w chunk by chunk,
// without materializing the stream; it returns the row count written.
func StreamCSV(w io.Writer, src RowSource) (int, error) {
	cw := csv.NewWriter(w)
	cols := src.Columns()
	if err := cw.Write(cols); err != nil {
		return 0, fmt.Errorf("dataset: writing CSV header: %w", err)
	}
	rec := make([]string, len(cols))
	rows := 0
	for {
		c, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return rows, err
		}
		for i := 0; i < c.Rows(); i++ {
			for j, v := range c.Row(i) {
				rec[j] = strconv.FormatFloat(v, 'g', -1, 64)
			}
			if err := cw.Write(rec); err != nil {
				return rows, fmt.Errorf("dataset: writing CSV row %d: %w", rows, err)
			}
			rows++
		}
		cw.Flush()
		if err := cw.Error(); err != nil {
			return rows, err
		}
	}
	cw.Flush()
	return rows, cw.Error()
}
