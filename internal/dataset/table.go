// Package dataset defines the in-memory table format shared by every index
// and provides the synthetic dataset generators that substitute for the
// paper's OSM and Airline extracts (see DESIGN.md §4), plus a CSV loader
// for experimenting with real data.
package dataset

import (
	"fmt"
	"math"
)

// Table is an immutable-after-build collection of rows stored row-major in
// one contiguous buffer ("a contiguous block of virtual memory in a row
// store format", §6 of the paper).
type Table struct {
	Cols []string  // column names, len = Dims
	Data []float64 // row-major, len = N*Dims
	dims int
}

// NewTable creates an empty table with the given column names.
func NewTable(cols []string) *Table {
	c := make([]string, len(cols))
	copy(c, cols)
	return &Table{Cols: c, dims: len(cols)}
}

// View wraps an existing row-major buffer as a table without copying; the
// caller keeps ownership of both slices. len(data) must be a multiple of
// len(cols).
func View(cols []string, data []float64) *Table {
	if len(cols) > 0 && len(data)%len(cols) != 0 {
		panic(fmt.Sprintf("dataset: buffer length %d not divisible by %d columns", len(data), len(cols)))
	}
	return &Table{Cols: cols, Data: data, dims: len(cols)}
}

// Dims reports the number of columns.
func (t *Table) Dims() int { return t.dims }

// Len reports the number of rows.
func (t *Table) Len() int {
	if t.dims == 0 {
		return 0
	}
	return len(t.Data) / t.dims
}

// Row returns row i as a slice aliasing the table buffer.
func (t *Table) Row(i int) []float64 {
	return t.Data[i*t.dims : (i+1)*t.dims : (i+1)*t.dims]
}

// Append adds one row (copied) to the table.
func (t *Table) Append(row []float64) {
	if len(row) != t.dims {
		panic(fmt.Sprintf("dataset: row has %d values, table has %d columns", len(row), t.dims))
	}
	t.Data = append(t.Data, row...)
}

// Grow ensures the table has capacity for at least rows additional rows
// without reallocating — the capacity hint plumbed from sources that know
// their size (generators, sized CSV files), so chunked ingest does not pay
// append-doubling copies and transient 2× growth spikes.
func (t *Table) Grow(rows int) {
	if rows <= 0 || t.dims == 0 {
		return
	}
	need := len(t.Data) + rows*t.dims
	if cap(t.Data) >= need {
		return
	}
	grown := make([]float64, len(t.Data), need)
	copy(grown, t.Data)
	t.Data = grown
}

// Column extracts column j into a fresh slice.
func (t *Table) Column(j int) []float64 {
	n := t.Len()
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = t.Data[i*t.dims+j]
	}
	return out
}

// ColumnIndex returns the position of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	for i, c := range t.Cols {
		if c == name {
			return i
		}
	}
	return -1
}

// SizeBytes reports the payload size of the row data.
func (t *Table) SizeBytes() int64 { return int64(len(t.Data) * 8) }

// Validate checks that the table holds a whole number of finite-valued rows.
func (t *Table) Validate() error {
	if t.dims == 0 {
		return fmt.Errorf("dataset: table has no columns")
	}
	if len(t.Data)%t.dims != 0 {
		return fmt.Errorf("dataset: buffer length %d not divisible by dims %d", len(t.Data), t.dims)
	}
	for i, v := range t.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("dataset: non-finite value at row %d col %d", i/t.dims, i%t.dims)
		}
	}
	return nil
}

// Slice returns a new table holding rows [lo, hi) copied out of t.
func (t *Table) Slice(lo, hi int) *Table {
	out := NewTable(t.Cols)
	out.Data = append(out.Data, t.Data[lo*t.dims:hi*t.dims]...)
	return out
}
