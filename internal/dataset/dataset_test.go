package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"github.com/coax-index/coax/internal/stats"
)

func TestTableBasics(t *testing.T) {
	tab := NewTable([]string{"a", "b"})
	if tab.Dims() != 2 || tab.Len() != 0 {
		t.Fatalf("fresh table: dims=%d len=%d", tab.Dims(), tab.Len())
	}
	tab.Append([]float64{1, 2})
	tab.Append([]float64{3, 4})
	if tab.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tab.Len())
	}
	if r := tab.Row(1); r[0] != 3 || r[1] != 4 {
		t.Errorf("Row(1) = %v", r)
	}
	if c := tab.Column(1); c[0] != 2 || c[1] != 4 {
		t.Errorf("Column(1) = %v", c)
	}
	if tab.ColumnIndex("b") != 1 || tab.ColumnIndex("zz") != -1 {
		t.Error("ColumnIndex lookup broken")
	}
	if tab.SizeBytes() != 4*8 {
		t.Errorf("SizeBytes = %d", tab.SizeBytes())
	}
	if err := tab.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestTableAppendWrongArity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Append with wrong arity must panic")
		}
	}()
	NewTable([]string{"a"}).Append([]float64{1, 2})
}

func TestTableValidateCatchesNaN(t *testing.T) {
	tab := NewTable([]string{"a"})
	tab.Append([]float64{math.NaN()})
	if err := tab.Validate(); err == nil {
		t.Error("NaN row must fail validation")
	}
	empty := &Table{}
	if err := empty.Validate(); err == nil {
		t.Error("zero-column table must fail validation")
	}
}

func TestTableSlice(t *testing.T) {
	tab := NewTable([]string{"a"})
	for i := 0; i < 10; i++ {
		tab.Append([]float64{float64(i)})
	}
	s := tab.Slice(3, 6)
	if s.Len() != 3 || s.Row(0)[0] != 3 || s.Row(2)[0] != 5 {
		t.Errorf("Slice(3,6) wrong: len=%d", s.Len())
	}
	// Slice copies: mutating the slice must not touch the parent.
	s.Row(0)[0] = 99
	if tab.Row(3)[0] != 3 {
		t.Error("Slice must copy rows")
	}
}

func TestGenerateOSMShape(t *testing.T) {
	cfg := DefaultOSMConfig(20000)
	tab := GenerateOSM(cfg)
	if tab.Len() != 20000 || tab.Dims() != 4 {
		t.Fatalf("OSM shape: len=%d dims=%d", tab.Len(), tab.Dims())
	}
	if err := tab.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// The id→timestamp soft FD must be strong.
	ids, ts := tab.Column(0), tab.Column(1)
	if r := stats.Pearson(ids, ts); r < 0.9 {
		t.Errorf("id/timestamp correlation = %g, want > 0.9", r)
	}
	// Coordinates stay in the bounding box.
	lat, lon := tab.Column(2), tab.Column(3)
	latMin, latMax := stats.MinMax(lat)
	lonMin, lonMax := stats.MinMax(lon)
	if latMin < 38.0 || latMax > 47.5 || lonMin < -80.5 || lonMax > -66.9 {
		t.Errorf("coordinates escape the region: lat [%g,%g] lon [%g,%g]",
			latMin, latMax, lonMin, lonMax)
	}
	// Clustered coordinates must be visibly non-uniform.
	if kl := stats.KLFromUniform(lat, 32); kl < 0.05 {
		t.Errorf("latitude KL from uniform = %g; expected skewed clusters", kl)
	}
}

func TestGenerateOSMDeterministic(t *testing.T) {
	a := GenerateOSM(DefaultOSMConfig(1000))
	b := GenerateOSM(DefaultOSMConfig(1000))
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("same seed must generate identical data")
		}
	}
	cfg := DefaultOSMConfig(1000)
	cfg.Seed = 99
	c := GenerateOSM(cfg)
	same := true
	for i := range a.Data {
		if a.Data[i] != c.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should generate different data")
	}
}

func TestGenerateAirlineShape(t *testing.T) {
	tab := GenerateAirline(DefaultAirlineConfig(20000))
	if tab.Len() != 20000 || tab.Dims() != 8 {
		t.Fatalf("airline shape: len=%d dims=%d", tab.Len(), tab.Dims())
	}
	if err := tab.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Both correlation groups must exist.
	dist := tab.Column(AirDistance)
	air := tab.Column(AirAirTime)
	elapsed := tab.Column(AirElapsed)
	if r := stats.Pearson(dist, air); r < 0.9 {
		t.Errorf("distance/airtime correlation = %g", r)
	}
	if r := stats.Pearson(air, elapsed); r < 0.9 {
		t.Errorf("airtime/elapsed correlation = %g", r)
	}
	dep := tab.Column(AirDepTime)
	sched := tab.Column(AirSchedArr)
	arr := tab.Column(AirArrTime)
	if r := stats.Pearson(dep, sched); r < 0.7 {
		t.Errorf("deptime/schedarr correlation = %g", r)
	}
	if r := stats.Pearson(sched, arr); r < 0.9 {
		t.Errorf("schedarr/arrtime correlation = %g", r)
	}
	// DayOfWeek must NOT correlate with distance.
	dow := tab.Column(AirDayOfWeek)
	if r := stats.Pearson(dow, dist); math.Abs(r) > 0.05 {
		t.Errorf("dayofweek/distance correlation = %g, want ≈0", r)
	}
	// Sanity on value ranges.
	if min, _ := stats.MinMax(dist); min < 50 {
		t.Errorf("implausible distance %g", min)
	}
	if min, max := stats.MinMax(dow); min < 1 || max > 7 {
		t.Errorf("dayofweek out of range [%g,%g]", min, max)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tab := NewTable([]string{"x", "y"})
	tab.Append([]float64{1.5, -2})
	tab.Append([]float64{0, 1e10})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tab); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 || back.Dims() != 2 {
		t.Fatalf("round trip shape: len=%d dims=%d", back.Len(), back.Dims())
	}
	for i := range tab.Data {
		if tab.Data[i] != back.Data[i] {
			t.Fatalf("round trip value mismatch at %d: %g vs %g", i, tab.Data[i], back.Data[i])
		}
	}
	if back.Cols[0] != "x" || back.Cols[1] != "y" {
		t.Errorf("round trip headers: %v", back.Cols)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty input must error")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n1,notanumber\n")); err == nil {
		t.Error("unparsable field must error")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n1\n")); err == nil {
		t.Error("short row must error")
	}
}
