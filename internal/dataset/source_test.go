package dataset

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// drain collects every row of src into a table via the chunk interface.
func drain(t *testing.T, src RowSource) *Table {
	t.Helper()
	out := NewTable(src.Columns())
	for {
		c, err := src.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if c.Rows() == 0 {
			t.Fatalf("empty non-EOF chunk")
		}
		out.Data = append(out.Data, c.Data...)
	}
}

func tablesEqual(a, b *Table) bool {
	if a.Dims() != b.Dims() || a.Len() != b.Len() {
		return false
	}
	for i, v := range a.Data {
		if v != b.Data[i] {
			return false
		}
	}
	return true
}

func TestTableSourceRoundTrip(t *testing.T) {
	tab := GenerateOSM(DefaultOSMConfig(1000))
	for _, chunk := range []int{1, 7, 100, 5000} {
		src := NewTableSource(tab, chunk)
		if got := src.SizeHint(); got != 1000 {
			t.Fatalf("SizeHint = %d, want 1000", got)
		}
		got := drain(t, src)
		if !tablesEqual(got, tab) {
			t.Fatalf("chunk=%d: drained table differs from source", chunk)
		}
		// Replay after Reset.
		if err := src.Reset(); err != nil {
			t.Fatalf("Reset: %v", err)
		}
		if got = drain(t, src); !tablesEqual(got, tab) {
			t.Fatalf("chunk=%d: replay differs", chunk)
		}
	}
}

func TestTableSourceUnread(t *testing.T) {
	tab := GenerateOSM(DefaultOSMConfig(10))
	src := NewTableSource(tab, 4)
	if src.Unread() != tab {
		t.Fatal("fresh source should expose its table")
	}
	if _, err := src.Next(); err != nil {
		t.Fatal(err)
	}
	if src.Unread() != nil {
		t.Fatal("consumed source must not expose its table")
	}
	// Materialize on a fresh source returns the identical table, no copy.
	got, err := Materialize(NewTableSource(tab, 4))
	if err != nil {
		t.Fatal(err)
	}
	if got != tab {
		t.Fatal("Materialize should short-circuit to the underlying table")
	}
}

func TestCSVSourceMatchesReadCSV(t *testing.T) {
	tab := GenerateAirline(DefaultAirlineConfig(500))
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tab); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	legacy, err := ReadCSV(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewCSVSource(bytes.NewReader(data), 64)
	if err != nil {
		t.Fatal(err)
	}
	streamed := drain(t, src)
	if !tablesEqual(legacy, streamed) {
		t.Fatal("streamed CSV differs from ReadCSV")
	}
	if !tablesEqual(legacy, tab) {
		t.Fatal("CSV round-trip lost data")
	}
}

func TestCSVSourceErrors(t *testing.T) {
	cases := []struct {
		name, data, want string
	}{
		{"short row", "a,b\n1,2\n3\n", "wrong number of fields"},
		{"bad float", "a,b\n1,x\n", `field "b"`},
		{"empty header", `""` + "\n", "single empty field"},
	}
	for _, tc := range cases {
		src, err := NewCSVSource(strings.NewReader(tc.data), 8)
		if err == nil {
			_, err = src.Next()
			for err == nil {
				_, err = src.Next()
			}
		}
		if err == nil || err == io.EOF || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestOpenCSVFileSizeHintAndReset(t *testing.T) {
	tab := GenerateOSM(DefaultOSMConfig(2000))
	path := filepath.Join(t.TempDir(), "osm.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(f, tab); err != nil {
		t.Fatal(err)
	}
	f.Close()

	src, err := OpenCSVFile(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if got := src.SizeHint(); got != -1 {
		t.Fatalf("SizeHint before reading = %d, want -1", got)
	}
	first := drain(t, src)
	if !tablesEqual(first, tab) {
		t.Fatal("file source differs from table")
	}
	hint := src.SizeHint()
	if hint < 1800 || hint > 2200 {
		t.Fatalf("SizeHint after full read = %d, want ≈2000", hint)
	}
	if err := src.Reset(); err != nil {
		t.Fatal(err)
	}
	if again := drain(t, src); !tablesEqual(again, tab) {
		t.Fatal("replay differs")
	}
}

func TestGeneratorSourcesMatchMaterialized(t *testing.T) {
	osmCfg := DefaultOSMConfig(1234)
	osmTab := GenerateOSM(osmCfg)
	src := NewOSMSource(osmCfg, 100)
	if got := drain(t, src); !tablesEqual(got, osmTab) {
		t.Fatal("OSM source differs from GenerateOSM")
	}
	if err := src.(Resetter).Reset(); err != nil {
		t.Fatal(err)
	}
	if got := drain(t, src); !tablesEqual(got, osmTab) {
		t.Fatal("OSM source replay differs")
	}

	airCfg := DefaultAirlineConfig(777)
	airTab := GenerateAirline(airCfg)
	if got := drain(t, NewAirlineSource(airCfg, 64)); !tablesEqual(got, airTab) {
		t.Fatal("airline source differs from GenerateAirline")
	}
}

func TestStreamCSVMatchesWriteCSV(t *testing.T) {
	tab := GenerateAirline(DefaultAirlineConfig(300))
	var want bytes.Buffer
	if err := WriteCSV(&want, tab); err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	n, err := StreamCSV(&got, NewTableSource(tab, 32))
	if err != nil {
		t.Fatal(err)
	}
	if n != tab.Len() {
		t.Fatalf("StreamCSV wrote %d rows, want %d", n, tab.Len())
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatal("StreamCSV output differs from WriteCSV")
	}
}

func TestTableGrow(t *testing.T) {
	tab := NewTable([]string{"a", "b"})
	tab.Grow(100)
	if cap(tab.Data) < 200 {
		t.Fatalf("cap = %d after Grow(100), want ≥ 200", cap(tab.Data))
	}
	ptr := cap(tab.Data)
	for i := 0; i < 100; i++ {
		tab.Append([]float64{float64(i), float64(-i)})
	}
	if cap(tab.Data) != ptr {
		t.Fatal("Append reallocated despite Grow")
	}
	if tab.Len() != 100 {
		t.Fatalf("Len = %d", tab.Len())
	}
}
