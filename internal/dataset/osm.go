package dataset

import (
	"math"
	"math/rand"
)

// OSMConfig controls the synthetic OpenStreetMap-like generator. The paper
// uses 4 dimensions of the OSM US-Northeast extract (105M rows) where Id and
// Timestamp are strongly correlated and Latitude/Longitude form dense
// clusters; this generator reproduces exactly those two structural
// properties at configurable scale.
type OSMConfig struct {
	N           int     // rows
	OutlierFrac float64 // fraction of rows violating the Id→Timestamp FD
	NoiseFrac   float64 // timestamp jitter std as a fraction of the full span
	EditRate    float64 // mean seconds between consecutive node ids
	Clusters    int     // number of dense lat/lon clusters
	ClusterStd  float64 // cluster spread in degrees
	UniformFrac float64 // fraction of coordinates drawn uniformly (rural noise)
	Seed        int64
}

// DefaultOSMConfig returns the configuration used throughout the benchmarks.
func DefaultOSMConfig(n int) OSMConfig {
	return OSMConfig{
		N:           n,
		OutlierFrac: 0.05,
		NoiseFrac:   0.01, // tight id→timestamp band regardless of scale
		EditRate:    2.0,
		Clusters:    12,
		ClusterStd:  0.35,
		UniformFrac: 0.15,
		Seed:        1,
	}
}

// OSM bounding box: roughly the US Northeast region used by the paper.
const (
	osmLatMin, osmLatMax = 38.0, 47.5
	osmLonMin, osmLonMax = -80.5, -66.9
)

// GenerateOSM builds the synthetic OSM table with columns
// (id, timestamp, lat, lon).
//
// Id is a dense ascending sequence; Timestamp follows id almost linearly
// (node ids are allocated in creation order) with Gaussian jitter, except
// for an OutlierFrac of rows whose timestamps are redrawn uniformly across
// the whole span — modelling re-imports and bulk edits, the records that a
// soft FD cannot capture and that land in the outlier index. Lat/Lon come
// from a mixture of dense urban clusters plus a uniform rural component,
// giving the skew that drives Figure 4a.
func GenerateOSM(cfg OSMConfig) *Table {
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := NewTable([]string{"id", "timestamp", "lat", "lon"})
	t.Data = make([]float64, 0, cfg.N*4)

	span := cfg.EditRate * float64(cfg.N)
	noiseStd := cfg.NoiseFrac * span
	centers := make([][2]float64, cfg.Clusters)
	weights := make([]float64, cfg.Clusters)
	wsum := 0.0
	for i := range centers {
		centers[i] = [2]float64{
			osmLatMin + rng.Float64()*(osmLatMax-osmLatMin),
			osmLonMin + rng.Float64()*(osmLonMax-osmLonMin),
		}
		// Zipf-ish cluster popularity: a few dominant metros.
		weights[i] = 1.0 / float64(i+1)
		wsum += weights[i]
	}

	row := make([]float64, 4)
	for i := 0; i < cfg.N; i++ {
		id := float64(i)
		var ts float64
		if rng.Float64() < cfg.OutlierFrac {
			ts = rng.Float64() * span
		} else {
			ts = id*cfg.EditRate + rng.NormFloat64()*noiseStd
		}
		if ts < 0 {
			ts = 0
		}
		if ts > span {
			ts = span
		}

		var lat, lon float64
		if rng.Float64() < cfg.UniformFrac {
			lat = osmLatMin + rng.Float64()*(osmLatMax-osmLatMin)
			lon = osmLonMin + rng.Float64()*(osmLonMax-osmLonMin)
		} else {
			c := pickWeighted(rng, weights, wsum)
			lat = clamp(centers[c][0]+rng.NormFloat64()*cfg.ClusterStd, osmLatMin, osmLatMax)
			lon = clamp(centers[c][1]+rng.NormFloat64()*cfg.ClusterStd, osmLonMin, osmLonMax)
		}

		row[0], row[1], row[2], row[3] = id, ts, lat, lon
		t.Append(row)
	}
	return t
}

func pickWeighted(rng *rand.Rand, weights []float64, wsum float64) int {
	u := rng.Float64() * wsum
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u <= acc {
			return i
		}
	}
	return len(weights) - 1
}

func clamp(v, lo, hi float64) float64 {
	return math.Max(lo, math.Min(hi, v))
}
