package dataset

import (
	"math"
	"math/rand"
)

// OSMConfig controls the synthetic OpenStreetMap-like generator. The paper
// uses 4 dimensions of the OSM US-Northeast extract (105M rows) where Id and
// Timestamp are strongly correlated and Latitude/Longitude form dense
// clusters; this generator reproduces exactly those two structural
// properties at configurable scale.
type OSMConfig struct {
	N           int     // rows
	OutlierFrac float64 // fraction of rows violating the Id→Timestamp FD
	NoiseFrac   float64 // timestamp jitter std as a fraction of the full span
	EditRate    float64 // mean seconds between consecutive node ids
	Clusters    int     // number of dense lat/lon clusters
	ClusterStd  float64 // cluster spread in degrees
	UniformFrac float64 // fraction of coordinates drawn uniformly (rural noise)
	Seed        int64
}

// DefaultOSMConfig returns the configuration used throughout the benchmarks.
func DefaultOSMConfig(n int) OSMConfig {
	return OSMConfig{
		N:           n,
		OutlierFrac: 0.05,
		NoiseFrac:   0.01, // tight id→timestamp band regardless of scale
		EditRate:    2.0,
		Clusters:    12,
		ClusterStd:  0.35,
		UniformFrac: 0.15,
		Seed:        1,
	}
}

// OSM bounding box: roughly the US Northeast region used by the paper.
const (
	osmLatMin, osmLatMax = 38.0, 47.5
	osmLonMin, osmLonMax = -80.5, -66.9
)

// OSMCols names the generated columns in order.
var OSMCols = []string{"id", "timestamp", "lat", "lon"}

// osmGen holds the sequential generator state so the materializing and
// streaming paths emit bit-identical rows.
type osmGen struct {
	cfg      OSMConfig
	rng      *rand.Rand
	span     float64
	noiseStd float64
	centers  [][2]float64
	weights  []float64
	wsum     float64
	i        int
}

func newOSMGen(cfg OSMConfig) *osmGen {
	g := &osmGen{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	g.span = cfg.EditRate * float64(cfg.N)
	g.noiseStd = cfg.NoiseFrac * g.span
	g.centers = make([][2]float64, cfg.Clusters)
	g.weights = make([]float64, cfg.Clusters)
	for i := range g.centers {
		g.centers[i] = [2]float64{
			osmLatMin + g.rng.Float64()*(osmLatMax-osmLatMin),
			osmLonMin + g.rng.Float64()*(osmLonMax-osmLonMin),
		}
		// Zipf-ish cluster popularity: a few dominant metros.
		g.weights[i] = 1.0 / float64(i+1)
		g.wsum += g.weights[i]
	}
	return g
}

// emit fills row with the next record, reporting false when exhausted.
func (g *osmGen) emit(row []float64) bool {
	if g.i >= g.cfg.N {
		return false
	}
	id := float64(g.i)
	var ts float64
	if g.rng.Float64() < g.cfg.OutlierFrac {
		ts = g.rng.Float64() * g.span
	} else {
		ts = id*g.cfg.EditRate + g.rng.NormFloat64()*g.noiseStd
	}
	if ts < 0 {
		ts = 0
	}
	if ts > g.span {
		ts = g.span
	}

	var lat, lon float64
	if g.rng.Float64() < g.cfg.UniformFrac {
		lat = osmLatMin + g.rng.Float64()*(osmLatMax-osmLatMin)
		lon = osmLonMin + g.rng.Float64()*(osmLonMax-osmLonMin)
	} else {
		c := pickWeighted(g.rng, g.weights, g.wsum)
		lat = clamp(g.centers[c][0]+g.rng.NormFloat64()*g.cfg.ClusterStd, osmLatMin, osmLatMax)
		lon = clamp(g.centers[c][1]+g.rng.NormFloat64()*g.cfg.ClusterStd, osmLonMin, osmLonMax)
	}

	row[0], row[1], row[2], row[3] = id, ts, lat, lon
	g.i++
	return true
}

// GenerateOSM builds the synthetic OSM table with columns
// (id, timestamp, lat, lon).
//
// Id is a dense ascending sequence; Timestamp follows id almost linearly
// (node ids are allocated in creation order) with Gaussian jitter, except
// for an OutlierFrac of rows whose timestamps are redrawn uniformly across
// the whole span — modelling re-imports and bulk edits, the records that a
// soft FD cannot capture and that land in the outlier index. Lat/Lon come
// from a mixture of dense urban clusters plus a uniform rural component,
// giving the skew that drives Figure 4a.
func GenerateOSM(cfg OSMConfig) *Table {
	g := newOSMGen(cfg)
	t := NewTable(OSMCols)
	t.Grow(cfg.N)
	row := make([]float64, 4)
	for g.emit(row) {
		t.Append(row)
	}
	return t
}

// NewOSMSource streams the same rows GenerateOSM would produce, chunk by
// chunk, without materializing the table; it is replayable (Reset
// regenerates from the seed) and knows its size.
func NewOSMSource(cfg OSMConfig, chunkRows int) RowSource {
	return NewFuncSource(OSMCols, cfg.N, chunkRows, func() func(row []float64) bool {
		return newOSMGen(cfg).emit
	})
}

func pickWeighted(rng *rand.Rand, weights []float64, wsum float64) int {
	u := rng.Float64() * wsum
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u <= acc {
			return i
		}
	}
	return len(weights) - 1
}

func clamp(v, lo, hi float64) float64 {
	return math.Max(lo, math.Min(hi, v))
}
