package dataset

import (
	"testing"

	"github.com/coax-index/coax/internal/binio"
)

func TestTableCodecRoundTrip(t *testing.T) {
	tab := GenerateOSM(DefaultOSMConfig(1234))
	w := binio.NewWriter()
	EncodeTable(w, tab)
	r := binio.NewReader(w.Bytes())
	got, err := DecodeTable(r)
	if err != nil {
		t.Fatalf("DecodeTable: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got.Len() != tab.Len() || got.Dims() != tab.Dims() {
		t.Fatalf("shape %dx%d, want %dx%d", got.Len(), got.Dims(), tab.Len(), tab.Dims())
	}
	for i, c := range tab.Cols {
		if got.Cols[i] != c {
			t.Fatalf("column %d = %q, want %q", i, got.Cols[i], c)
		}
	}
	for i := range tab.Data {
		if got.Data[i] != tab.Data[i] {
			t.Fatalf("value %d differs", i)
		}
	}
}

func TestTableCodecEmptyTable(t *testing.T) {
	tab := NewTable([]string{"a", "b"})
	w := binio.NewWriter()
	EncodeTable(w, tab)
	got, err := DecodeTable(binio.NewReader(w.Bytes()))
	if err != nil {
		t.Fatalf("DecodeTable: %v", err)
	}
	if got.Len() != 0 || got.Dims() != 2 {
		t.Fatalf("decoded %dx%d", got.Len(), got.Dims())
	}
}

// TestTableCodecColumnMajor pins the on-disk layout: after the header the
// payload must run column by column, not row by row.
func TestTableCodecColumnMajor(t *testing.T) {
	tab := NewTable([]string{"a", "b"})
	tab.Append([]float64{1, 10})
	tab.Append([]float64{2, 20})
	w := binio.NewWriter()
	EncodeTable(w, tab)
	r := binio.NewReader(w.Bytes())
	if n := r.Uint64(); n != 2 {
		t.Fatalf("column count %d", n)
	}
	_, _ = r.String(), r.String() // skip the two column names
	if n := r.Uint64(); n != 2 {
		t.Fatalf("row count %d", n)
	}
	want := []float64{1, 2, 10, 20} // column-major
	for i, x := range want {
		if v := r.Float64(); v != x {
			t.Fatalf("payload[%d] = %g, want %g", i, v, x)
		}
	}
}

func TestTableCodecTruncated(t *testing.T) {
	tab := GenerateOSM(DefaultOSMConfig(50))
	w := binio.NewWriter()
	EncodeTable(w, tab)
	blob := w.Bytes()
	for n := 0; n < len(blob); n += 7 {
		if _, err := DecodeTable(binio.NewReader(blob[:n])); err == nil {
			t.Fatalf("prefix %d decoded successfully", n)
		}
	}
}
