package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// FuzzReadCSV drives the CSV loader with arbitrary input. ReadCSV must
// never panic — malformed rows, ragged field counts, bad floats, and
// quoting edge cases all surface as errors — and any input it accepts must
// survive a WriteCSV→ReadCSV round trip unchanged.
func FuzzReadCSV(f *testing.F) {
	f.Add("a,b\n1,2\n3,4\n")
	f.Add("x\n1\n")
	f.Add("a,b,c\n1,2,3\n4,5,6\n7,8,9\n")
	f.Add("a,b\n1\n")                       // ragged row
	f.Add("a,b\n1,notanumber\n")            // bad float
	f.Add("a,b\nNaN,+Inf\n-Inf,1e308\n")    // non-finite values parse
	f.Add("\"a\",\"b\"\n\"1\",\"2\"\n")     // quoted fields
	f.Add("a,b\n\"1,5\",2\n")               // comma inside quotes
	f.Add("a,b\r\n1,2\r\n")                 // CRLF
	f.Add("")                               // empty input
	f.Add("a,b\n1,2\n\n3,4\n")              // blank line
	f.Add("a,a\n0,-0\n")                    // duplicate headers, signed zero
	f.Add("a,b\n1e-308,2.225073858e-308\n") // subnormals
	f.Add(strings.Repeat("c,", 100) + "c\n")

	f.Fuzz(func(t *testing.T, data string) {
		tab, err := ReadCSV(strings.NewReader(data))
		if err != nil {
			return
		}
		// Accepted input must produce a structurally coherent table…
		if tab.Dims() == 0 {
			t.Fatalf("accepted CSV with zero columns: %q", data)
		}
		if len(tab.Data)%tab.Dims() != 0 {
			t.Fatalf("ragged buffer: %d values, %d dims", len(tab.Data), tab.Dims())
		}
		// …that round-trips through the writer bit-for-bit (NaN ≡ NaN).
		var buf bytes.Buffer
		if err := WriteCSV(&buf, tab); err != nil {
			t.Fatalf("WriteCSV on accepted table: %v", err)
		}
		back, err := ReadCSV(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-reading written CSV: %v", err)
		}
		if back.Len() != tab.Len() || back.Dims() != tab.Dims() {
			t.Fatalf("round trip changed shape: %dx%d -> %dx%d",
				tab.Len(), tab.Dims(), back.Len(), back.Dims())
		}
		for i, v := range tab.Data {
			w := back.Data[i]
			if v != w && !(math.IsNaN(v) && math.IsNaN(w)) {
				t.Fatalf("round trip changed value %d: %v -> %v", i, v, w)
			}
		}
	})
}
