package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// ReadCSV loads a table from CSV data. The first record is treated as the
// header; every subsequent field must parse as a float64. Rows with a wrong
// field count or unparsable values produce an error identifying the line.
func ReadCSV(r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	// A single empty header field (`""`) is rejected: encoding/csv writes
	// that record as a blank line, which readers skip, so a table built
	// from it could never round-trip through WriteCSV (found by fuzzing).
	if len(header) == 1 && header[0] == "" {
		return nil, fmt.Errorf("dataset: CSV header is a single empty field")
	}
	cols := make([]string, len(header))
	copy(cols, header)
	t := NewTable(cols)
	row := make([]float64, len(cols))
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			return nil, fmt.Errorf("dataset: reading CSV line %d: %w", line, err)
		}
		if len(rec) != len(cols) {
			return nil, fmt.Errorf("dataset: CSV line %d has %d fields, want %d", line, len(rec), len(cols))
		}
		for i, f := range rec {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: CSV line %d field %q: %w", line, cols[i], err)
			}
			row[i] = v
		}
		t.Append(row)
	}
	return t, nil
}

// WriteCSV emits the table as CSV with a header row.
func WriteCSV(w io.Writer, t *Table) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Cols); err != nil {
		return fmt.Errorf("dataset: writing CSV header: %w", err)
	}
	rec := make([]string, t.Dims())
	for i := 0; i < t.Len(); i++ {
		row := t.Row(i)
		for j, v := range row {
			rec[j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataset: writing CSV row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}
