package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// ReadCSV loads a table from CSV data. The first record is treated as the
// header; every subsequent field must parse as a float64. Rows with a wrong
// field count or unparsable values produce an error identifying the line.
// It is a materializing shim over the chunked CSVSource (see source.go);
// callers that do not need the whole table in memory should stream instead.
func ReadCSV(r io.Reader) (*Table, error) {
	src, err := NewCSVSource(r, 0)
	if err != nil {
		return nil, err
	}
	return Materialize(src)
}

// WriteCSV emits the table as CSV with a header row.
func WriteCSV(w io.Writer, t *Table) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Cols); err != nil {
		return fmt.Errorf("dataset: writing CSV header: %w", err)
	}
	rec := make([]string, t.Dims())
	for i := 0; i < t.Len(); i++ {
		row := t.Row(i)
		for j, v := range row {
			rec[j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataset: writing CSV row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}
