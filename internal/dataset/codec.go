package dataset

import (
	"fmt"

	"github.com/coax-index/coax/internal/binio"
)

// Snapshot codec for tables. The payload is column-major — each column is
// one contiguous run of n float64 values — which compresses better under
// downstream tooling and matches the column-file layout the paper's
// baselines assume; Decode transposes back into the row-major in-memory
// form.

// EncodeTable appends t to w in column-major order.
func EncodeTable(w *binio.Writer, t *Table) {
	w.Uint64(uint64(len(t.Cols)))
	for _, c := range t.Cols {
		w.String(c)
	}
	n := t.Len()
	w.Uint64(uint64(n))
	for j := 0; j < t.Dims(); j++ {
		for i := 0; i < n; i++ {
			w.Float64(t.Data[i*t.dims+j])
		}
	}
}

// DecodeTable reads a table written by EncodeTable.
func DecodeTable(r *binio.Reader) (*Table, error) {
	nCols := r.Uint64()
	if r.Err() != nil {
		return nil, r.Err()
	}
	// Each column name costs at least its 8-byte length prefix.
	if nCols == 0 || nCols > uint64(r.Remaining()/8) {
		return nil, fmt.Errorf("dataset: implausible column count %d", nCols)
	}
	cols := make([]string, nCols)
	for i := range cols {
		cols[i] = r.String()
	}
	n := r.Uint64()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if n > uint64(r.Remaining())/(8*nCols) {
		return nil, fmt.Errorf("dataset: declared %d rows exceed payload", n)
	}
	t := NewTable(cols)
	t.Data = make([]float64, int(n)*t.dims)
	for j := 0; j < t.dims; j++ {
		for i := 0; i < int(n); i++ {
			t.Data[i*t.dims+j] = r.Float64()
		}
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return t, nil
}
