package dataset

import (
	"math/rand"
)

// AirlineConfig controls the synthetic US-Airlines-like generator. The
// paper's airline dataset (80M rows, 8 attributes, years 2000–2009)
// contains two 3-attribute correlation groups:
//
//	(Distance, ElapsedTime, AirTime)          — physics of flight
//	(ArrTime,  DepTime,     ScheduledArrTime) — schedule arithmetic
//
// plus DayOfWeek and Carrier, which correlate with nothing. The generator
// reproduces that structure with heavy-tailed delays so that a realistic
// share of rows fall outside the soft-FD margins (the paper reports a 92%
// primary-index ratio).
type AirlineConfig struct {
	N            int
	DelayStd     float64 // minutes; arrival-delay scale
	DiversionPct float64 // fraction of flights with wildly broken FDs
	Seed         int64
}

// DefaultAirlineConfig returns the configuration used by the benchmarks.
func DefaultAirlineConfig(n int) AirlineConfig {
	return AirlineConfig{N: n, DelayStd: 18, DiversionPct: 0.02, Seed: 2}
}

// Airline column order (matches Table 1's "8 attributes").
const (
	AirDistance  = iota // miles
	AirElapsed          // minutes gate-to-gate
	AirAirTime          // minutes wheels-up to wheels-down
	AirDepTime          // minutes since midnight
	AirArrTime          // minutes since midnight (may exceed 1440 on overnights)
	AirSchedArr         // minutes since midnight
	AirDayOfWeek        // 1..7
	AirCarrier          // 0..17
)

// AirlineCols names the generated columns in order.
var AirlineCols = []string{
	"distance", "elapsed", "airtime",
	"deptime", "arrtime", "schedarr",
	"dayofweek", "carrier",
}

// airRouteClass is one component of the route-length mixture: regional
// hops, transcon, and a long-haul tail.
type airRouteClass struct {
	meanDist, stdDist, weight float64
}

// airlineGen holds the sequential generator state so the materializing and
// streaming paths emit bit-identical rows.
type airlineGen struct {
	cfg     AirlineConfig
	rng     *rand.Rand
	classes []airRouteClass
	wsum    float64
	banks   []struct{ mean, std, weight float64 }
	bsum    float64
	i       int
}

func newAirlineGen(cfg AirlineConfig) *airlineGen {
	g := &airlineGen{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	g.classes = []airRouteClass{
		{350, 120, 0.45},
		{900, 250, 0.35},
		{2100, 350, 0.17},
		{4200, 500, 0.03},
	}
	for _, c := range g.classes {
		g.wsum += c.weight
	}
	// Departure banks: morning, midday, evening pushes.
	g.banks = []struct{ mean, std, weight float64 }{
		{7 * 60, 70, 0.35},
		{12 * 60, 100, 0.30},
		{18 * 60, 80, 0.35},
	}
	for _, b := range g.banks {
		g.bsum += b.weight
	}
	return g
}

// emit fills row with the next record, reporting false when exhausted.
func (g *airlineGen) emit(row []float64) bool {
	if g.i >= g.cfg.N {
		return false
	}
	rng := g.rng

	// Distance from the route mixture.
	u := rng.Float64() * g.wsum
	var dist float64
	for _, c := range g.classes {
		if u <= c.weight {
			dist = c.meanDist + rng.NormFloat64()*c.stdDist
			break
		}
		u -= c.weight
	}
	if dist < 80 {
		dist = 80 + rng.Float64()*60
	}

	// Cruise speed ~ 7.4 miles/min with per-flight wind variation.
	speed := 7.4 + rng.NormFloat64()*0.5
	if speed < 5.5 {
		speed = 5.5
	}
	airtime := dist/speed + 22 + rng.NormFloat64()*6 // climb/descent overhead
	if airtime < 20 {
		airtime = 20
	}
	taxi := 18 + rng.ExpFloat64()*8
	elapsed := airtime + taxi

	// Departure bank.
	ub := rng.Float64() * g.bsum
	var dep float64
	for _, b := range g.banks {
		if ub <= b.weight {
			dep = b.mean + rng.NormFloat64()*b.std
			break
		}
		ub -= b.weight
	}
	if dep < 300 {
		dep = 300 + rng.Float64()*60
	}

	schedArr := dep + elapsed + rng.NormFloat64()*5 // published padding
	delay := rng.NormFloat64() * g.cfg.DelayStd
	if rng.Float64() < 0.08 { // irregular-ops tail
		delay += rng.ExpFloat64() * 30
	}
	arr := schedArr + delay

	if rng.Float64() < g.cfg.DiversionPct {
		// Diversions / data errors: break both FD groups hard.
		airtime += 60 + rng.Float64()*240
		elapsed = airtime + taxi + rng.Float64()*120
		arr = schedArr + 120 + rng.Float64()*600
	}

	row[AirDistance] = dist
	row[AirElapsed] = elapsed
	row[AirAirTime] = airtime
	row[AirDepTime] = dep
	row[AirArrTime] = arr
	row[AirSchedArr] = schedArr
	row[AirDayOfWeek] = float64(1 + rng.Intn(7))
	row[AirCarrier] = float64(rng.Intn(18))
	g.i++
	return true
}

// GenerateAirline builds the synthetic airline table.
func GenerateAirline(cfg AirlineConfig) *Table {
	g := newAirlineGen(cfg)
	t := NewTable(AirlineCols)
	t.Grow(cfg.N)
	row := make([]float64, 8)
	for g.emit(row) {
		t.Append(row)
	}
	return t
}

// NewAirlineSource streams the same rows GenerateAirline would produce,
// chunk by chunk, without materializing the table; it is replayable (Reset
// regenerates from the seed) and knows its size.
func NewAirlineSource(cfg AirlineConfig, chunkRows int) RowSource {
	return NewFuncSource(AirlineCols, cfg.N, chunkRows, func() func(row []float64) bool {
		return newAirlineGen(cfg).emit
	})
}
