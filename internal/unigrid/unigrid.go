// Package unigrid provides the "full grid" baseline of the paper's §8.1.3:
// a hash-like structure that breaks every attribute into uniformly sized
// cells between its minimum and maximum value, with no in-cell sorting and
// no shared/merged cells. It is a fixed configuration of the grid-file
// engine.
package unigrid

import (
	"github.com/coax-index/coax/internal/dataset"
	"github.com/coax-index/coax/internal/gridfile"
)

// Build constructs a uniform full grid over every column of t with
// cellsPerDim cells along each axis.
func Build(t *dataset.Table, cellsPerDim int) (*gridfile.GridFile, error) {
	dims := make([]int, t.Dims())
	for i := range dims {
		dims[i] = i
	}
	return gridfile.Build(t, gridfile.Config{
		GridDims:    dims,
		SortDim:     -1,
		CellsPerDim: cellsPerDim,
		Mode:        gridfile.Uniform,
		Label:       "FullGrid",
	})
}
