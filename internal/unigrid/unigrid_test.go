package unigrid

import (
	"math/rand"
	"testing"

	"github.com/coax-index/coax/internal/dataset"
	"github.com/coax-index/coax/internal/index"
	"github.com/coax-index/coax/internal/scan"
)

func TestFullGridMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tab := dataset.NewTable([]string{"a", "b", "c"})
	for i := 0; i < 3000; i++ {
		tab.Append([]float64{rng.Float64() * 100, rng.NormFloat64() * 10, rng.ExpFloat64()})
	}
	g, err := Build(tab, 6)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "FullGrid" {
		t.Errorf("Name = %q", g.Name())
	}
	if g.NumCells() != 6*6*6 {
		t.Errorf("NumCells = %d, want 216", g.NumCells())
	}
	oracle := scan.New(tab)
	for trial := 0; trial < 40; trial++ {
		r := index.Full(3)
		for d := 0; d < 3; d++ {
			a, b := tab.Row(rng.Intn(tab.Len()))[d], tab.Row(rng.Intn(tab.Len()))[d]
			if a > b {
				a, b = b, a
			}
			r.Min[d], r.Max[d] = a, b
		}
		if got, want := index.Count(g, r), index.Count(oracle, r); got != want {
			t.Fatalf("trial %d: %d, want %d", trial, got, want)
		}
	}
}
