// Package bench provides the measurement harness shared by cmd/coaxbench
// and the root-level testing.B benchmarks: per-query latency statistics
// over a fixed workload and plain-text table rendering for experiment
// output.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"github.com/coax-index/coax/internal/index"
)

// QueryStats aggregates per-query latencies for one index over one
// workload.
type QueryStats struct {
	Name    string
	Queries int
	Matches int64
	TotalNs int64
	P50Ns   int64
	P99Ns   int64
}

// AvgNs returns the mean per-query latency in nanoseconds.
func (s QueryStats) AvgNs() float64 {
	if s.Queries == 0 {
		return 0
	}
	return float64(s.TotalNs) / float64(s.Queries)
}

// AvgMs returns the mean per-query latency in milliseconds.
func (s QueryStats) AvgMs() float64 { return s.AvgNs() / 1e6 }

// Measure times run over every query. run must return the number of
// matching rows so the harness can report workload size and defeat
// dead-code elimination.
func Measure(name string, queries []index.Rect, run func(index.Rect) int) QueryStats {
	s := QueryStats{Name: name, Queries: len(queries)}
	lat := make([]int64, len(queries))
	for i, q := range queries {
		start := time.Now()
		n := run(q)
		el := time.Since(start).Nanoseconds()
		lat[i] = el
		s.TotalNs += el
		s.Matches += int64(n)
	}
	if len(lat) > 0 {
		sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
		s.P50Ns = lat[len(lat)/2]
		s.P99Ns = lat[(len(lat)*99)/100]
	}
	return s
}

// MeasureIndex is Measure over a full index.Interface query.
func MeasureIndex(idx index.Interface, queries []index.Rect) QueryStats {
	return Measure(idx.Name(), queries, func(q index.Rect) int {
		return index.Count(idx, q)
	})
}

// FormatNs renders nanoseconds with an adaptive unit, e.g. "0.132 ms".
func FormatNs(ns float64) string {
	switch {
	case ns >= 1e6:
		return fmt.Sprintf("%.3f ms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.2f µs", ns/1e3)
	default:
		return fmt.Sprintf("%.0f ns", ns)
	}
}

// FormatBytes renders a byte count with an adaptive unit.
func FormatBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// NewTable creates a table with a title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// Add appends one row; cells beyond the header width are dropped, missing
// cells render empty.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// Addf appends one row built from format/args pairs: each argument is
// rendered with %v.
func (t *Table) Addf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprintf("%v", c)
	}
	t.Add(row...)
}

// Fprint renders the table to w.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len([]rune(c)) > widths[i] {
				widths[i] = len([]rune(c))
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	}
	printRow := func(cells []string) {
		parts := make([]string, len(widths))
		for i := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	printRow(t.Header)
	sep := make([]string, len(widths))
	for i, wd := range widths {
		sep[i] = strings.Repeat("-", wd)
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
}

func pad(s string, w int) string {
	r := []rune(s)
	if len(r) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(r))
}
