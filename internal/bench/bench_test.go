package bench

import (
	"bytes"
	"strings"
	"testing"

	"github.com/coax-index/coax/internal/index"
)

func TestMeasure(t *testing.T) {
	queries := []index.Rect{
		index.NewRect([]float64{0}, []float64{1}),
		index.NewRect([]float64{0}, []float64{2}),
	}
	s := Measure("fake", queries, func(q index.Rect) int {
		return int(q.Max[0])
	})
	if s.Name != "fake" || s.Queries != 2 {
		t.Errorf("stats identity: %+v", s)
	}
	if s.Matches != 3 {
		t.Errorf("Matches = %d, want 3", s.Matches)
	}
	if s.TotalNs <= 0 || s.AvgNs() <= 0 {
		t.Error("timings must be positive")
	}
	if s.P50Ns <= 0 || s.P99Ns < s.P50Ns {
		t.Errorf("percentiles broken: p50=%d p99=%d", s.P50Ns, s.P99Ns)
	}
}

func TestMeasureEmpty(t *testing.T) {
	s := Measure("none", nil, func(index.Rect) int { return 0 })
	if s.AvgNs() != 0 || s.AvgMs() != 0 {
		t.Error("empty workload should report zero averages")
	}
}

func TestFormatNs(t *testing.T) {
	cases := []struct {
		ns   float64
		want string
	}{
		{500, "500 ns"},
		{1500, "1.50 µs"},
		{2.5e6, "2.500 ms"},
	}
	for _, c := range cases {
		if got := FormatNs(c.ns); got != c.want {
			t.Errorf("FormatNs(%g) = %q, want %q", c.ns, got, c.want)
		}
	}
}

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		b    int64
		want string
	}{
		{512, "512 B"},
		{2048, "2.00 KiB"},
		{3 << 20, "3.00 MiB"},
		{5 << 30, "5.00 GiB"},
	}
	for _, c := range cases {
		if got := FormatBytes(c.b); got != c.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", c.b, got, c.want)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("demo", "name", "value")
	tab.Add("alpha", "1")
	tab.Addf("beta", 22)
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"== demo ==", "name", "alpha", "beta", "22"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Columns aligned: "alpha  1" (name padded to 5).
	if !strings.Contains(out, "alpha  1") {
		t.Errorf("column alignment broken:\n%s", out)
	}
}
