// Package softfd implements the learning half of COAX (paper §5,
// Algorithm 1): automatic detection of soft functional dependencies between
// table columns. Detection draws a sample, overlays a 2-D grid on every
// candidate column pair, keeps only dense cells, fits a weighted linear
// model to the cell centres, validates the fit with a Monte-Carlo sampler,
// derives asymmetric error margins (εLB, εUB) from residual quantiles, and
// finally merges correlated pairs into groups with one predictor attribute
// per group.
package softfd

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/coax-index/coax/internal/dataset"
	"github.com/coax-index/coax/internal/model"
	"github.com/coax-index/coax/internal/stats"
)

// Config tunes the detector. The zero value is not usable; start from
// DefaultConfig. The paper (§5) notes the accuracy/run-time trade-off is
// governed by the sample size, the cell size, and the cell acceptance
// threshold — exactly the knobs exposed here.
type Config struct {
	// SampleCount rows are drawn uniformly for training (Algorithm 1's
	// sample_count). Capped at the table size.
	SampleCount int
	// BucketChunks is the grid resolution per axis (bucket_chunks).
	BucketChunks int
	// CellThreshold is the minimum record count for a cell to contribute
	// its centre to training. 0 means automatic: the mean cell occupancy.
	CellThreshold int
	// MonteCarloTrials is the number of random re-fits used to validate
	// that a linear model is stable on the training centres.
	MonteCarloTrials int
	// MinR2 is the minimum coefficient of determination, measured on the
	// sampled rows that fall inside the margins (the rows the primary
	// index will actually serve), for a dependency to be accepted.
	MinR2 float64
	// MarginQuantile q is the starting point for margin selection: εUB is
	// the q residual quantile and εLB the (1−q) quantile. When the
	// resulting band is wider than MaxMarginFrac allows, q shrinks until
	// the band fits — heavy outlier tails must not inflate the margins
	// (they belong in the outlier index instead).
	MarginQuantile float64
	// MaxMarginFrac bounds the total margin (εLB+εUB) as a fraction of the
	// dependent column's range; a wider "FD" would force the primary index
	// to scan most of the data anyway.
	MaxMarginFrac float64
	// MinInlierFrac is the minimum fraction of sampled rows that must fall
	// inside the margins. Below it, too much data would land in the
	// outlier index for the dependency to pay off.
	MinInlierFrac float64
	// ExcludeCols lists columns never considered (categorical codes etc.).
	ExcludeCols []int
	// Kind selects the model family: ModelLinear (the paper's design) or
	// ModelSpline (the §7.2 non-linear extension).
	Kind ModelKind
	// Seed drives sampling and the Monte-Carlo trials.
	Seed int64
}

// DefaultConfig returns the settings used across the benchmarks.
func DefaultConfig() Config {
	return Config{
		SampleCount:      20000,
		BucketChunks:     64,
		CellThreshold:    0,
		MonteCarloTrials: 8,
		MinR2:            0.75,
		MarginQuantile:   0.99,
		MaxMarginFrac:    0.30,
		MinInlierFrac:    0.65,
		Seed:             42,
	}
}

// PairModel is one accepted directed soft FD: column X predicts column D as
// D ≈ ψ̂(X) within [−EpsLB, +EpsUB], where ψ̂ is a regression line or, for
// the §7.2 extension, a piecewise-linear spline.
type PairModel struct {
	X, D   int
	Model  model.Linear  // linear ψ̂; ignored when Spline is set
	Spline *model.Spline // non-linear ψ̂ (nil for linear models)
	EpsLB  float64       // ≥ 0; lower displacement tolerance
	EpsUB  float64       // ≥ 0; upper displacement tolerance
	R2     float64       // measured on sampled rows within the margins
	Inlier float64       // fraction of sampled rows within the margins
}

// Predict evaluates ψ̂ at x.
func (p PairModel) Predict(x float64) float64 {
	if p.Spline != nil {
		return p.Spline.Predict(x)
	}
	return p.Model.Predict(x)
}

// Within reports whether a (x, d) pair respects the model margins — the
// membership test for the primary index.
func (p PairModel) Within(x, d float64) bool {
	disp := d - p.Predict(x)
	return disp >= -p.EpsLB && disp <= p.EpsUB
}

// InvertBand returns the tightest x-interval [xLo, xHi] that can map into
// ψ̂(x) ∈ [yLo, yHi]. feasible is false when no x qualifies. An unbounded
// interval (±Inf) means the model carries no x-information for this band
// (a flat line or flat segment inside the band).
func (p PairModel) InvertBand(yLo, yHi float64) (xLo, xHi float64, feasible bool) {
	if p.Spline == nil {
		return invertLinearBand(p.Model, math.Inf(-1), math.Inf(1), yLo, yHi)
	}
	// Union the per-segment inversions and take their convex hull — a
	// superset for non-monotone splines, which preserves correctness.
	xLo, xHi = math.Inf(1), math.Inf(-1)
	feasible = false
	sp := p.Spline
	for i, seg := range sp.Segs {
		dLo, dHi := math.Inf(-1), math.Inf(1)
		if i > 0 {
			dLo = sp.Knots[i]
		}
		if i < len(sp.Segs)-1 {
			dHi = sp.Knots[i+1]
		}
		lo, hi, ok := invertLinearBand(seg, dLo, dHi, yLo, yHi)
		if !ok {
			continue
		}
		feasible = true
		if lo < xLo {
			xLo = lo
		}
		if hi > xHi {
			xHi = hi
		}
	}
	return xLo, xHi, feasible
}

// invertLinearBand solves yLo ≤ m·x + b ≤ yHi over the domain [dLo, dHi].
func invertLinearBand(l model.Linear, dLo, dHi, yLo, yHi float64) (xLo, xHi float64, feasible bool) {
	if l.Slope == 0 {
		if l.Intercept < yLo || l.Intercept > yHi {
			return 0, 0, false
		}
		return dLo, dHi, true
	}
	a := (yLo - l.Intercept) / l.Slope
	b := (yHi - l.Intercept) / l.Slope
	if a > b {
		a, b = b, a
	}
	if a < dLo {
		a = dLo
	}
	if b > dHi {
		b = dHi
	}
	if a > b {
		return 0, 0, false
	}
	return a, b, true
}

// Group is one set of mutually correlated columns with a chosen predictor.
// Every non-predictor member has a PairModel with X = Predictor.
type Group struct {
	Predictor int
	Members   []int // includes Predictor, ascending
	Models    []PairModel
}

// Dependents returns the group's members excluding the predictor.
func (g Group) Dependents() []int {
	out := make([]int, 0, len(g.Members)-1)
	for _, m := range g.Members {
		if m != g.Predictor {
			out = append(out, m)
		}
	}
	return out
}

// Result is what Detect produces.
type Result struct {
	Groups []Group
	// Pairs holds every accepted directed dependency before grouping, for
	// diagnostics and for the fdscan tool.
	Pairs []PairModel
}

// DependentColumns returns the set of columns that are predicted rather
// than indexed.
func (r Result) DependentColumns() map[int]bool {
	out := make(map[int]bool)
	for _, g := range r.Groups {
		for _, d := range g.Dependents() {
			out[d] = true
		}
	}
	return out
}

// ModelBytes reports the memory the learned models occupy (counted as part
// of the COAX directory overhead).
func (r Result) ModelBytes() int64 {
	var n int64
	for _, g := range r.Groups {
		n += 16 // predictor + member slice header
		n += int64(len(g.Members) * 8)
		n += int64(len(g.Models)) * 56 // 2 ints + 5 float64 per model
		for _, m := range g.Models {
			if m.Spline != nil {
				n += m.Spline.SizeBytes()
			}
		}
	}
	return n
}

// DetectSample runs detection over a table that is itself a pre-drawn
// sample (e.g. a row reservoir built while streaming a larger input): every
// row of t participates, regardless of cfg.SampleCount, so the caller's
// reservoir size — not the detector's internal re-sampling — governs the
// accuracy/memory trade-off.
func DetectSample(t *dataset.Table, cfg Config) (Result, error) {
	if cfg.SampleCount < t.Len() {
		cfg.SampleCount = t.Len()
	}
	if cfg.SampleCount < 4 {
		cfg.SampleCount = 4
	}
	return Detect(t, cfg)
}

// Detect finds soft-FD groups in t. It never fails on degenerate data: a
// table with no detectable correlations yields an empty Result.
func Detect(t *dataset.Table, cfg Config) (Result, error) {
	if err := checkConfig(cfg); err != nil {
		return Result{}, err
	}
	if t.Len() < 4 {
		return Result{}, nil
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	sampleN := cfg.SampleCount
	if sampleN > t.Len() {
		sampleN = t.Len()
	}
	rows := stats.SampleIndices(t.Len(), sampleN, rng)

	excluded := make(map[int]bool, len(cfg.ExcludeCols))
	for _, c := range cfg.ExcludeCols {
		excluded[c] = true
	}

	// Sample columns once.
	cols := make([][]float64, t.Dims())
	for c := 0; c < t.Dims(); c++ {
		if excluded[c] {
			continue
		}
		cols[c] = make([]float64, len(rows))
		for i, r := range rows {
			cols[c][i] = t.Row(r)[c]
		}
	}

	var res Result
	// Consider unique pairs; evaluate both directions and keep any that
	// pass acceptance.
	for i := 0; i < t.Dims(); i++ {
		if excluded[i] {
			continue
		}
		for j := i + 1; j < t.Dims(); j++ {
			if excluded[j] {
				continue
			}
			if pm, ok := fitPair(cols[i], cols[j], i, j, cfg, rng); ok {
				res.Pairs = append(res.Pairs, pm)
			}
			if pm, ok := fitPair(cols[j], cols[i], j, i, cfg, rng); ok {
				res.Pairs = append(res.Pairs, pm)
			}
		}
	}

	res.Groups = buildGroups(res.Pairs, cols, cfg, rng)
	return res, nil
}

func checkConfig(cfg Config) error {
	if cfg.SampleCount < 4 {
		return fmt.Errorf("softfd: SampleCount must be ≥ 4, got %d", cfg.SampleCount)
	}
	if cfg.BucketChunks < 2 {
		return fmt.Errorf("softfd: BucketChunks must be ≥ 2, got %d", cfg.BucketChunks)
	}
	if cfg.MinR2 < 0 || cfg.MinR2 > 1 {
		return fmt.Errorf("softfd: MinR2 must be in [0,1], got %g", cfg.MinR2)
	}
	if cfg.MarginQuantile <= 0.5 || cfg.MarginQuantile >= 1 {
		return fmt.Errorf("softfd: MarginQuantile must be in (0.5,1), got %g", cfg.MarginQuantile)
	}
	if cfg.MaxMarginFrac <= 0 || cfg.MaxMarginFrac > 1 {
		return fmt.Errorf("softfd: MaxMarginFrac must be in (0,1], got %g", cfg.MaxMarginFrac)
	}
	if cfg.MinInlierFrac < 0 || cfg.MinInlierFrac > 1 {
		return fmt.Errorf("softfd: MinInlierFrac must be in [0,1], got %g", cfg.MinInlierFrac)
	}
	if cfg.MonteCarloTrials < 1 {
		return fmt.Errorf("softfd: MonteCarloTrials must be ≥ 1, got %d", cfg.MonteCarloTrials)
	}
	return nil
}

// fitPair attempts to learn xs → ys and returns the model if it passes all
// acceptance tests. The model family is selected by cfg.Kind.
func fitPair(xs, ys []float64, xi, yi int, cfg Config, rng *rand.Rand) (PairModel, bool) {
	if cfg.Kind == ModelSpline {
		return fitPairSpline(xs, ys, xi, yi, cfg, rng)
	}
	cx, cy, w := BucketCenters(xs, ys, cfg.BucketChunks, cfg.CellThreshold)
	if len(cx) < 2 {
		return PairModel{}, false
	}
	lin, _, err := model.FitOLS(cx, cy, w)
	if err != nil {
		return PairModel{}, false
	}
	if !monteCarloStable(cx, cy, w, lin, cfg, rng) {
		return PairModel{}, false
	}
	return acceptOnRows(xs, ys, xi, yi, lin, cfg)
}

// acceptOnRows validates a candidate line against the raw sampled rows and
// derives its margins. Margin selection is adaptive: starting from
// MarginQuantile, the quantile shrinks until the band respects
// MaxMarginFrac — a heavy outlier tail widens the outlier index, never the
// primary margins. The pair is accepted when enough rows are inliers and
// the model explains the inlier band well.
func acceptOnRows(xs, ys []float64, xi, yi int, lin model.Linear, cfg Config) (PairModel, bool) {
	resid := lin.Residuals(xs, ys)
	sorted := make([]float64, len(resid))
	copy(sorted, resid)
	sort.Float64s(sorted)

	ymin, ymax := stats.MinMax(ys)
	yrange := ymax - ymin
	if yrange == 0 {
		return PairModel{}, false // constant dependent: nothing to predict
	}
	epsLB, epsUB, ok := adaptiveMargins(sorted, cfg, yrange)
	if !ok {
		return PairModel{}, false
	}

	// R² restricted to the inlier band: does the model genuinely explain
	// the rows the primary index will serve? A tightly concentrated but
	// x-independent column yields R² ≈ 0 here and is rejected.
	inliers, inlierFrac, r2 := inlierStats(ys, resid, epsLB, epsUB)
	if inlierFrac < cfg.MinInlierFrac || inliers < 2 || r2 < cfg.MinR2 {
		return PairModel{}, false
	}

	return PairModel{
		X:      xi,
		D:      yi,
		Model:  lin,
		EpsLB:  epsLB,
		EpsUB:  epsUB,
		R2:     r2,
		Inlier: inlierFrac,
	}, true
}

// monteCarloStable re-fits the line on random halves of the training
// centres and rejects fits whose slope is unstable or whose subset R² drops
// below the acceptance threshold — Algorithm 1's Monte-Carlo check.
func monteCarloStable(cx, cy, w []float64, full model.Linear, cfg Config, rng *rand.Rand) bool {
	if len(cx) < 8 {
		return true // too few centres to subsample meaningfully
	}
	half := len(cx) / 2
	slopes := make([]float64, 0, cfg.MonteCarloTrials)
	r2s := make([]float64, 0, cfg.MonteCarloTrials)
	sx := make([]float64, half)
	sy := make([]float64, half)
	sw := make([]float64, half)
	for trial := 0; trial < cfg.MonteCarloTrials; trial++ {
		idx := stats.SampleIndices(len(cx), half, rng)
		for k, i := range idx {
			sx[k], sy[k], sw[k] = cx[i], cy[i], w[i]
		}
		lin, diag, err := model.FitOLS(sx, sy, sw)
		if err != nil {
			return false
		}
		slopes = append(slopes, lin.Slope)
		r2s = append(r2s, diag.R2)
	}
	if stats.Quantile(r2s, 0.5) < cfg.MinR2 {
		return false
	}
	// Slope stability: spread relative to the full-fit slope.
	lo, hiS := stats.MinMax(slopes)
	scale := math.Abs(full.Slope)
	if scale == 0 {
		return false // flat line carries no invertible information
	}
	return (hiS-lo)/scale <= 1.0
}

// BucketCenters performs the grid-bucketing step of Algorithm 1: overlay a
// chunks×chunks grid on the (xs, ys) sample, drop cells at or below the
// threshold, and return the centre of every surviving cell together with
// its count as the regression weight. threshold ≤ 0 selects the mean cell
// occupancy automatically.
func BucketCenters(xs, ys []float64, chunks, threshold int) (cx, cy, w []float64) {
	if len(xs) == 0 {
		return nil, nil, nil
	}
	xmin, xmax := stats.MinMax(xs)
	ymin, ymax := stats.MinMax(ys)
	if xmax == xmin || ymax == ymin {
		return nil, nil, nil
	}
	wx := (xmax - xmin) / float64(chunks)
	wy := (ymax - ymin) / float64(chunks)

	counts := make([]int, chunks*chunks)
	for i := range xs {
		bx := cellSlot(xs[i], xmin, wx, chunks)
		by := cellSlot(ys[i], ymin, wy, chunks)
		counts[bx*chunks+by]++
	}
	if threshold <= 0 {
		occupied := 0
		for _, c := range counts {
			if c > 0 {
				occupied++
			}
		}
		if occupied == 0 {
			return nil, nil, nil
		}
		threshold = len(xs) / occupied // mean occupancy of non-empty cells
	}
	for bx := 0; bx < chunks; bx++ {
		for by := 0; by < chunks; by++ {
			c := counts[bx*chunks+by]
			if c > threshold {
				cx = append(cx, xmin+(float64(bx)+0.5)*wx)
				cy = append(cy, ymin+(float64(by)+0.5)*wy)
				w = append(w, float64(c))
			}
		}
	}
	return cx, cy, w
}

func cellSlot(v, min, width float64, chunks int) int {
	s := int((v - min) / width)
	if s < 0 {
		s = 0
	}
	if s >= chunks {
		s = chunks - 1
	}
	return s
}
