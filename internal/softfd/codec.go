package softfd

import (
	"fmt"

	"github.com/coax-index/coax/internal/binio"
	"github.com/coax-index/coax/internal/model"
)

// Snapshot codec for detection results. A persisted Result is what lets a
// loaded COAX index answer translated queries without re-running Detect.

// EncodeResult appends the full detection result to w.
func EncodeResult(w *binio.Writer, res Result) {
	w.Uint64(uint64(len(res.Groups)))
	for _, g := range res.Groups {
		encodeGroup(w, g)
	}
	w.Uint64(uint64(len(res.Pairs)))
	for _, p := range res.Pairs {
		encodePairModel(w, p)
	}
}

// DecodeResult reads a result written by EncodeResult. dims bounds the
// column indices; pass a negative value to skip the bound check.
func DecodeResult(r *binio.Reader, dims int) (Result, error) {
	var res Result
	nGroups := r.Uint64()
	if r.Err() != nil {
		return Result{}, r.Err()
	}
	for i := uint64(0); i < nGroups; i++ {
		g, err := decodeGroup(r, dims)
		if err != nil {
			return Result{}, fmt.Errorf("softfd: group %d: %w", i, err)
		}
		res.Groups = append(res.Groups, g)
	}
	nPairs := r.Uint64()
	if r.Err() != nil {
		return Result{}, r.Err()
	}
	for i := uint64(0); i < nPairs; i++ {
		p, err := decodePairModel(r, dims)
		if err != nil {
			return Result{}, fmt.Errorf("softfd: pair %d: %w", i, err)
		}
		res.Pairs = append(res.Pairs, p)
	}
	return res, nil
}

func encodeGroup(w *binio.Writer, g Group) {
	w.Int(g.Predictor)
	w.Ints(g.Members)
	w.Uint64(uint64(len(g.Models)))
	for _, m := range g.Models {
		encodePairModel(w, m)
	}
}

func decodeGroup(r *binio.Reader, dims int) (Group, error) {
	g := Group{Predictor: r.Int(), Members: r.Ints()}
	nModels := r.Uint64()
	if r.Err() != nil {
		return Group{}, r.Err()
	}
	for i := uint64(0); i < nModels; i++ {
		m, err := decodePairModel(r, dims)
		if err != nil {
			return Group{}, err
		}
		g.Models = append(g.Models, m)
	}
	if !validCol(g.Predictor, dims) {
		return Group{}, fmt.Errorf("predictor %d out of range [0,%d)", g.Predictor, dims)
	}
	seen := make(map[int]bool, len(g.Members))
	for _, m := range g.Members {
		if !validCol(m, dims) {
			return Group{}, fmt.Errorf("member %d out of range [0,%d)", m, dims)
		}
		if seen[m] {
			return Group{}, fmt.Errorf("member %d listed twice", m)
		}
		seen[m] = true
	}
	if !seen[g.Predictor] {
		return Group{}, fmt.Errorf("predictor %d not among members", g.Predictor)
	}
	for _, m := range g.Models {
		if m.X != g.Predictor {
			return Group{}, fmt.Errorf("model %d→%d does not start at predictor %d", m.X, m.D, g.Predictor)
		}
		if !seen[m.D] {
			return Group{}, fmt.Errorf("model dependent %d not among members", m.D)
		}
	}
	return g, nil
}

func encodePairModel(w *binio.Writer, p PairModel) {
	w.Int(p.X)
	w.Int(p.D)
	p.Model.Encode(w)
	w.Bool(p.Spline != nil)
	if p.Spline != nil {
		p.Spline.Encode(w)
	}
	w.Float64(p.EpsLB)
	w.Float64(p.EpsUB)
	w.Float64(p.R2)
	w.Float64(p.Inlier)
}

func decodePairModel(r *binio.Reader, dims int) (PairModel, error) {
	p := PairModel{X: r.Int(), D: r.Int(), Model: model.DecodeLinear(r)}
	if r.Bool() {
		sp, err := model.DecodeSpline(r)
		if err != nil {
			return PairModel{}, err
		}
		p.Spline = sp
	}
	p.EpsLB = r.Float64()
	p.EpsUB = r.Float64()
	p.R2 = r.Float64()
	p.Inlier = r.Float64()
	if err := r.Err(); err != nil {
		return PairModel{}, err
	}
	if !validCol(p.X, dims) || !validCol(p.D, dims) || p.X == p.D {
		return PairModel{}, fmt.Errorf("invalid column pair %d→%d for %d dims", p.X, p.D, dims)
	}
	if p.EpsLB < 0 || p.EpsUB < 0 {
		return PairModel{}, fmt.Errorf("negative margin (εLB=%g, εUB=%g)", p.EpsLB, p.EpsUB)
	}
	return p, nil
}

func validCol(c, dims int) bool {
	if dims < 0 {
		return c >= 0
	}
	return c >= 0 && c < dims
}
