package softfd

import (
	"math/rand"
	"testing"

	"github.com/coax-index/coax/internal/dataset"
	"github.com/coax-index/coax/internal/model"
)

// linearFDTable builds a table where col1 = slope*col0 + icept + noise, and
// col2 is independent uniform noise.
func linearFDTable(rng *rand.Rand, n int, slope, icept, noiseStd float64) *dataset.Table {
	t := dataset.NewTable([]string{"x", "d", "u"})
	for i := 0; i < n; i++ {
		x := rng.Float64() * 1000
		d := slope*x + icept + rng.NormFloat64()*noiseStd
		u := rng.Float64() * 1000
		t.Append([]float64{x, d, u})
	}
	return t
}

func TestDetectFindsPlantedFD(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tab := linearFDTable(rng, 20000, 2.5, 100, 5)
	cfg := DefaultConfig()
	res, err := Detect(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 1 {
		t.Fatalf("groups = %d, want 1 (%+v)", len(res.Groups), res.Groups)
	}
	g := res.Groups[0]
	if len(g.Members) != 2 {
		t.Fatalf("group members = %v", g.Members)
	}
	if g.Members[0] != 0 || g.Members[1] != 1 {
		t.Fatalf("group should contain columns 0 and 1, got %v", g.Members)
	}
	pm := g.Models[0]
	// The model must approximately recover the planted line.
	if pm.Model.Slope < 2 || pm.Model.Slope > 3 {
		if pm.Model.Slope < 1/3.0 || pm.Model.Slope > 1/2.0 {
			t.Errorf("recovered slope %g matches neither direction of the planted FD", pm.Model.Slope)
		}
	}
	if pm.R2 < 0.9 {
		t.Errorf("R2 = %g, want > 0.9", pm.R2)
	}
	if pm.EpsLB <= 0 || pm.EpsUB <= 0 {
		t.Errorf("margins must be positive: %g %g", pm.EpsLB, pm.EpsUB)
	}
	if pm.Inlier < 0.9 {
		t.Errorf("inlier fraction = %g", pm.Inlier)
	}
}

func TestDetectRejectsIndependentColumns(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tab := dataset.NewTable([]string{"a", "b"})
	for i := 0; i < 20000; i++ {
		tab.Append([]float64{rng.Float64() * 100, rng.Float64() * 100})
	}
	res, err := Detect(tab, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 0 {
		t.Errorf("independent columns produced groups: %+v", res.Groups)
	}
}

func TestDetectNegativeSlope(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tab := linearFDTable(rng, 20000, -4, 5000, 3)
	res, err := Detect(tab, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 1 {
		t.Fatalf("groups = %d, want 1", len(res.Groups))
	}
	if res.Groups[0].Models[0].Model.Slope >= 0 {
		t.Errorf("slope should be negative, got %g", res.Groups[0].Models[0].Model.Slope)
	}
}

func TestDetectThreeWayGroup(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tab := dataset.NewTable([]string{"x", "y", "z", "u"})
	for i := 0; i < 20000; i++ {
		x := rng.Float64() * 1000
		y := 2*x + rng.NormFloat64()*4
		z := 0.5*x + 10 + rng.NormFloat64()*4
		tab.Append([]float64{x, y, z, rng.Float64() * 1000})
	}
	res, err := Detect(tab, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 1 {
		t.Fatalf("groups = %d, want 1 merged group", len(res.Groups))
	}
	g := res.Groups[0]
	if len(g.Members) != 3 {
		t.Fatalf("members = %v, want 3 columns", g.Members)
	}
	if len(g.Models) != 2 {
		t.Fatalf("models = %d, want one per dependent", len(g.Models))
	}
	for _, m := range g.Models {
		if m.X != g.Predictor {
			t.Errorf("model predictor %d != group predictor %d", m.X, g.Predictor)
		}
	}
	deps := g.Dependents()
	if len(deps) != 2 {
		t.Errorf("Dependents = %v", deps)
	}
}

func TestDetectWithManyOutliers(t *testing.T) {
	// 25% outliers — the paper's "much softer" FD claim. Detection must
	// still find the dependency.
	rng := rand.New(rand.NewSource(5))
	tab := dataset.NewTable([]string{"x", "d"})
	for i := 0; i < 20000; i++ {
		x := rng.Float64() * 1000
		var d float64
		if rng.Float64() < 0.25 {
			d = rng.Float64() * 3000
		} else {
			d = 3*x + rng.NormFloat64()*3
		}
		tab.Append([]float64{x, d})
	}
	res, err := Detect(tab, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 1 {
		t.Fatalf("groups = %d, want 1", len(res.Groups))
	}
	m := res.Groups[0].Models[0]
	// The bucketing step must keep the fitted line on the dense band, not
	// the outlier cloud.
	slope := m.Model.Slope
	if m.X == 1 { // inverted direction
		slope = 1 / slope
	}
	if slope < 2.4 || slope > 3.6 {
		t.Errorf("slope %g drifted off the dense band", slope)
	}
}

func TestDetectExcludeCols(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tab := linearFDTable(rng, 10000, 2, 0, 1)
	cfg := DefaultConfig()
	cfg.ExcludeCols = []int{1}
	res, err := Detect(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 0 {
		t.Errorf("excluding the dependent column should yield no groups, got %+v", res.Groups)
	}
}

func TestDetectDegenerateInputs(t *testing.T) {
	cfg := DefaultConfig()

	// Tiny table: no panic, no groups.
	tiny := dataset.NewTable([]string{"a", "b"})
	tiny.Append([]float64{1, 2})
	res, err := Detect(tiny, cfg)
	if err != nil || len(res.Groups) != 0 {
		t.Errorf("tiny table: res=%+v err=%v", res, err)
	}

	// Constant columns: no groups, no division by zero.
	constTab := dataset.NewTable([]string{"a", "b"})
	for i := 0; i < 100; i++ {
		constTab.Append([]float64{5, 7})
	}
	res, err = Detect(constTab, cfg)
	if err != nil || len(res.Groups) != 0 {
		t.Errorf("constant table: res=%+v err=%v", res, err)
	}
}

func TestDetectExactFD(t *testing.T) {
	// A hard FD (zero noise) must be detected with tiny margins.
	rng := rand.New(rand.NewSource(7))
	tab := dataset.NewTable([]string{"x", "d"})
	for i := 0; i < 10000; i++ {
		x := rng.Float64() * 100
		tab.Append([]float64{x, 7 * x})
	}
	res, err := Detect(tab, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 1 {
		t.Fatalf("groups = %d, want 1", len(res.Groups))
	}
	m := res.Groups[0].Models[0]
	if m.EpsLB+m.EpsUB > 1 {
		t.Errorf("exact FD margins too wide: %g + %g", m.EpsLB, m.EpsUB)
	}
	if m.Inlier < 0.99 {
		t.Errorf("exact FD inlier fraction = %g", m.Inlier)
	}
}

func TestConfigValidation(t *testing.T) {
	tab := dataset.NewTable([]string{"a", "b"})
	for i := 0; i < 100; i++ {
		tab.Append([]float64{float64(i), float64(i)})
	}
	bad := []Config{
		{SampleCount: 1, BucketChunks: 8, MinR2: 0.5, MarginQuantile: 0.9, MaxMarginFrac: 0.2, MonteCarloTrials: 4},
		{SampleCount: 100, BucketChunks: 1, MinR2: 0.5, MarginQuantile: 0.9, MaxMarginFrac: 0.2, MonteCarloTrials: 4},
		{SampleCount: 100, BucketChunks: 8, MinR2: 1.5, MarginQuantile: 0.9, MaxMarginFrac: 0.2, MonteCarloTrials: 4},
		{SampleCount: 100, BucketChunks: 8, MinR2: 0.5, MarginQuantile: 0.4, MaxMarginFrac: 0.2, MonteCarloTrials: 4},
		{SampleCount: 100, BucketChunks: 8, MinR2: 0.5, MarginQuantile: 0.9, MaxMarginFrac: 0, MonteCarloTrials: 4},
		{SampleCount: 100, BucketChunks: 8, MinR2: 0.5, MarginQuantile: 0.9, MaxMarginFrac: 0.2, MonteCarloTrials: 0},
	}
	for i, cfg := range bad {
		if _, err := Detect(tab, cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestBucketCenters(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 10000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = rng.Float64() * 100
		ys[i] = 2 * xs[i]
	}
	cx, cy, w := BucketCenters(xs, ys, 32, 0)
	if len(cx) == 0 || len(cx) != len(cy) || len(cx) != len(w) {
		t.Fatalf("centre shapes: %d %d %d", len(cx), len(cy), len(w))
	}
	// Far fewer centres than points — that is the point of bucketing.
	if len(cx) > 32*32 {
		t.Errorf("more centres than cells: %d", len(cx))
	}
	// Centres must hug the planted line.
	for i := range cx {
		d := cy[i] - 2*cx[i]
		if d > 8 || d < -8 {
			t.Errorf("centre %d off the line by %g", i, d)
		}
		if w[i] <= 0 {
			t.Errorf("non-positive weight %g", w[i])
		}
	}
}

func TestBucketCentersDegenerate(t *testing.T) {
	if cx, _, _ := BucketCenters(nil, nil, 8, 0); cx != nil {
		t.Error("empty input should give no centres")
	}
	xs := []float64{1, 1, 1}
	ys := []float64{1, 2, 3}
	if cx, _, _ := BucketCenters(xs, ys, 8, 0); cx != nil {
		t.Error("constant x should give no centres")
	}
}

func TestPairModelWithin(t *testing.T) {
	pm := PairModel{
		X: 0, D: 1,
		Model: model.Linear{Slope: 2},
		EpsLB: 1, EpsUB: 3,
	}
	cases := []struct {
		x, d float64
		want bool
	}{
		{10, 20, true},    // exactly on the line
		{10, 23, true},    // at +εUB
		{10, 19, true},    // at −εLB
		{10, 23.1, false}, // above
		{10, 18.9, false}, // below
	}
	for _, c := range cases {
		if got := pm.Within(c.x, c.d); got != c.want {
			t.Errorf("Within(%g,%g) = %v, want %v", c.x, c.d, got, c.want)
		}
	}
}

func TestResultHelpers(t *testing.T) {
	res := Result{Groups: []Group{{
		Predictor: 0,
		Members:   []int{0, 1, 2},
		Models: []PairModel{
			{X: 0, D: 1},
			{X: 0, D: 2},
		},
	}}}
	deps := res.DependentColumns()
	if !deps[1] || !deps[2] || deps[0] {
		t.Errorf("DependentColumns = %v", deps)
	}
	if res.ModelBytes() <= 0 {
		t.Error("ModelBytes must be positive for a non-empty result")
	}
}
