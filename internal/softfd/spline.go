package softfd

import (
	"math"
	"math/rand"
	"sort"

	"github.com/coax-index/coax/internal/model"
	"github.com/coax-index/coax/internal/stats"
)

// Spline soft-FD models: the paper's §7.2 extension. A dependency that no
// single line can capture (seasonal curves, piecewise tariffs, saturation
// effects) can still be modelled by a piecewise-linear spline with a
// constant margin; Theorem 7.4 bounds the number of segments needed. The
// detection pipeline is identical — bucket centres, stability check,
// adaptive margins, acceptance — with the spline fitted over the sorted
// centres instead of a single regression line.

// ModelKind selects the model family fitted over a candidate dependency.
type ModelKind int

const (
	// ModelLinear fits one regression line (the paper's main design).
	ModelLinear ModelKind = iota
	// ModelSpline fits an ε-bounded piecewise-linear spline, enabling
	// non-linear soft FDs at the cost of storing the segments.
	ModelSpline
)

// fitPairSpline attempts to learn xs → ys with a spline model.
func fitPairSpline(xs, ys []float64, xi, yi int, cfg Config, rng *rand.Rand) (PairModel, bool) {
	cx, cy, w := BucketCenters(xs, ys, cfg.BucketChunks, cfg.CellThreshold)
	if len(cx) < 4 {
		return PairModel{}, false
	}
	// Sort centres by x for the spline fitter; keep weights aligned.
	type cpt struct{ x, y, w float64 }
	pts := make([]cpt, len(cx))
	for i := range cx {
		pts[i] = cpt{cx[i], cy[i], w[i]}
	}
	sort.Slice(pts, func(a, b int) bool { return pts[a].x < pts[b].x })
	sx := make([]float64, len(pts))
	sy := make([]float64, len(pts))
	for i, p := range pts {
		sx[i], sy[i] = p.x, p.y
	}

	ymin, ymax := stats.MinMax(sy)
	if ymax == ymin {
		return PairModel{}, false
	}
	yrange := ymax - ymin

	// Fit tolerance search: the tightest tolerance whose spline stays
	// within the segment budget. Tolerances derived from the *allowed*
	// margin would track MaxMarginFrac instead of the data's noise and
	// waste the spline's advantage over a single line.
	maxSegments := maxSplineSegments(len(sx))
	var sp model.Spline
	fitted := false
	for fitEps := yrange / 512; fitEps <= cfg.MaxMarginFrac*yrange/2; fitEps *= 2 {
		cand, err := model.FitSplineMaxError(sx, sy, fitEps)
		if err != nil {
			return PairModel{}, false
		}
		if cand.NumSegments() <= maxSegments {
			sp, fitted = cand, true
			break
		}
	}
	if !fitted {
		return PairModel{}, false
	}
	pm, ok := acceptSplineOnRows(xs, ys, xi, yi, sp, cfg)
	if !ok {
		return PairModel{}, false
	}
	if refined, ok := refineSplineOnRows(xs, ys, xi, yi, pm, cfg); ok {
		return refined, true
	}
	return pm, true
}

// refineSplineOnRows refits the spline on the sampled rows inside the
// coarse model's margins. Bucket centres are quantised to cell centres, so
// the coarse fit carries up to half a cell of systematic error; fitting the
// rows directly removes it. The refinement is kept only when it both passes
// acceptance and tightens the margins.
func refineSplineOnRows(xs, ys []float64, xi, yi int, coarse PairModel, cfg Config) (PairModel, bool) {
	type pt struct{ x, y float64 }
	var pts []pt
	for i := range xs {
		if coarse.Within(xs[i], ys[i]) {
			pts = append(pts, pt{xs[i], ys[i]})
		}
	}
	if len(pts) < 16 {
		return PairModel{}, false
	}
	sort.Slice(pts, func(a, b int) bool { return pts[a].x < pts[b].x })
	sx := make([]float64, len(pts))
	sy := make([]float64, len(pts))
	for i, p := range pts {
		sx[i], sy[i] = p.x, p.y
	}
	ymin, ymax := stats.MinMax(sy)
	if ymax == ymin {
		return PairModel{}, false
	}
	yrange := ymax - ymin

	// Duplicate x values with spread y make tiny tolerances unsatisfiable
	// in one pass; the geometric search skips past them.
	const maxSegments = 96
	for fitEps := yrange / 1024; fitEps <= cfg.MaxMarginFrac*yrange/2; fitEps *= 2 {
		cand, err := model.FitSplineMaxError(sx, sy, fitEps)
		if err != nil {
			return PairModel{}, false
		}
		if cand.NumSegments() > maxSegments {
			continue
		}
		refined, ok := acceptSplineOnRows(xs, ys, xi, yi, cand, cfg)
		if !ok {
			return PairModel{}, false
		}
		if refined.EpsLB+refined.EpsUB < coarse.EpsLB+coarse.EpsUB {
			return refined, true
		}
		return PairModel{}, false
	}
	return PairModel{}, false
}

// maxSplineSegments bounds the model size: enough pieces to track genuine
// structure, far fewer than one per training centre (which would memorise
// noise).
func maxSplineSegments(centres int) int {
	cap := centres / 4
	if cap > 64 {
		cap = 64
	}
	if cap < 2 {
		cap = 2
	}
	return cap
}

// acceptSplineOnRows mirrors acceptOnRows for a spline model.
func acceptSplineOnRows(xs, ys []float64, xi, yi int, sp model.Spline, cfg Config) (PairModel, bool) {
	resid := make([]float64, len(xs))
	for i := range xs {
		resid[i] = ys[i] - sp.Predict(xs[i])
	}
	sorted := make([]float64, len(resid))
	copy(sorted, resid)
	sort.Float64s(sorted)

	ymin, ymax := stats.MinMax(ys)
	yrange := ymax - ymin
	if yrange == 0 {
		return PairModel{}, false
	}
	epsLB, epsUB, ok := adaptiveMargins(sorted, cfg, yrange)
	if !ok {
		return PairModel{}, false
	}

	inliers, inFrac, r2 := inlierStats(ys, resid, epsLB, epsUB)
	if inFrac < cfg.MinInlierFrac || inliers < 2 || r2 < cfg.MinR2 {
		return PairModel{}, false
	}
	spline := sp
	return PairModel{
		X:      xi,
		D:      yi,
		Spline: &spline,
		EpsLB:  epsLB,
		EpsUB:  epsUB,
		R2:     r2,
		Inlier: inFrac,
	}, true
}

// adaptiveMargins implements the shrinking-quantile margin selection shared
// by the linear and spline acceptance paths.
func adaptiveMargins(sortedResid []float64, cfg Config, yrange float64) (epsLB, epsUB float64, ok bool) {
	maxWidth := cfg.MaxMarginFrac * yrange
	q := cfg.MarginQuantile
	for {
		epsUB = math.Max(0, stats.QuantileSorted(sortedResid, q))
		epsLB = math.Max(0, -stats.QuantileSorted(sortedResid, 1-q))
		if epsLB+epsUB <= maxWidth || q <= 0.52 {
			break
		}
		q -= 0.01
	}
	if epsLB+epsUB > maxWidth {
		return 0, 0, false
	}
	if epsUB == 0 && epsLB == 0 {
		slack := 1e-9 * (1 + yrange)
		epsUB, epsLB = slack, slack
	}
	return epsLB, epsUB, true
}

// inlierStats returns the inlier count, fraction, and the R² restricted to
// the inlier band.
func inlierStats(ys, resid []float64, epsLB, epsUB float64) (inliers int, frac, r2 float64) {
	var sumY, sse float64
	for i, r := range resid {
		if r >= -epsLB && r <= epsUB {
			inliers++
			sumY += ys[i]
			sse += r * r
		}
	}
	frac = float64(inliers) / float64(len(resid))
	if inliers < 2 {
		return inliers, frac, 0
	}
	meanIn := sumY / float64(inliers)
	var syy float64
	for i, r := range resid {
		if r >= -epsLB && r <= epsUB {
			d := ys[i] - meanIn
			syy += d * d
		}
	}
	if syy == 0 {
		return inliers, frac, 0
	}
	return inliers, frac, 1 - sse/syy
}
