package softfd

import (
	"math"
	"math/rand"
	"testing"

	"github.com/coax-index/coax/internal/dataset"
	"github.com/coax-index/coax/internal/model"
)

// curvedTable builds a table with a strongly non-linear dependency:
// d = 0.002·x² + noise over x ∈ [0, 1000].
func curvedTable(rng *rand.Rand, n int, noiseStd float64) *dataset.Table {
	t := dataset.NewTable([]string{"x", "d"})
	for i := 0; i < n; i++ {
		x := rng.Float64() * 1000
		d := 0.002*x*x + rng.NormFloat64()*noiseStd
		t.Append([]float64{x, d})
	}
	return t
}

func splineConfig() Config {
	cfg := DefaultConfig()
	cfg.Kind = ModelSpline
	return cfg
}

func TestSplineDetectsCurvedFD(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tab := curvedTable(rng, 20000, 5)
	res, err := Detect(tab, splineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 1 {
		t.Fatalf("groups = %d, want 1", len(res.Groups))
	}
	pm := res.Groups[0].Models[0]
	if pm.Spline == nil {
		t.Fatal("expected a spline model")
	}
	if pm.Spline.NumSegments() < 2 {
		t.Errorf("a quadratic needs multiple segments, got %d", pm.Spline.NumSegments())
	}
	if pm.R2 < 0.9 {
		t.Errorf("R2 = %g", pm.R2)
	}
	// The margins for the spline must be far tighter than any straight
	// line could achieve on this curve.
	lin, _, err := model.FitOLS(tab.Column(pm.X), tab.Column(pm.D), nil)
	if err != nil {
		t.Fatal(err)
	}
	resid := lin.Residuals(tab.Column(pm.X), tab.Column(pm.D))
	worstLin := 0.0
	for _, r := range resid {
		if math.Abs(r) > worstLin {
			worstLin = math.Abs(r)
		}
	}
	if pm.EpsLB+pm.EpsUB >= worstLin {
		t.Errorf("spline margins %g not tighter than linear max residual %g",
			pm.EpsLB+pm.EpsUB, worstLin)
	}
}

func TestSplinePredictAndWithin(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tab := curvedTable(rng, 20000, 3)
	res, err := Detect(tab, splineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 1 {
		t.Skip("spline FD not detected")
	}
	pm := res.Groups[0].Models[0]
	// Most rows must be within the margins (that is what Inlier reported).
	in := 0
	for i := 0; i < tab.Len(); i++ {
		row := tab.Row(i)
		if pm.Within(row[pm.X], row[pm.D]) {
			in++
		}
	}
	frac := float64(in) / float64(tab.Len())
	if math.Abs(frac-pm.Inlier) > 0.05 {
		t.Errorf("full-table inlier fraction %g far from sample estimate %g", frac, pm.Inlier)
	}
}

func TestInvertBandLinear(t *testing.T) {
	pm := PairModel{Model: model.Linear{Slope: 2, Intercept: 10}}
	lo, hi, ok := pm.InvertBand(20, 30)
	if !ok || lo != 5 || hi != 10 {
		t.Errorf("InvertBand = [%g,%g] ok=%v, want [5,10] true", lo, hi, ok)
	}
	// Negative slope flips the interval.
	pm = PairModel{Model: model.Linear{Slope: -2, Intercept: 10}}
	lo, hi, ok = pm.InvertBand(0, 10)
	if !ok || lo != 0 || hi != 5 {
		t.Errorf("neg slope InvertBand = [%g,%g] ok=%v, want [0,5] true", lo, hi, ok)
	}
	// Flat model inside the band: feasible, no information.
	pm = PairModel{Model: model.Linear{Slope: 0, Intercept: 7}}
	lo, hi, ok = pm.InvertBand(5, 10)
	if !ok || !math.IsInf(lo, -1) || !math.IsInf(hi, 1) {
		t.Errorf("flat-in-band InvertBand = [%g,%g] ok=%v", lo, hi, ok)
	}
	// Flat model outside the band: infeasible.
	if _, _, ok = pm.InvertBand(8, 10); ok {
		t.Error("flat model outside the band must be infeasible")
	}
}

func TestInvertBandSpline(t *testing.T) {
	// Piecewise model: y = x on [0,10), y = 10 + 3(x−10) on [10,∞).
	sp := &model.Spline{
		Knots: []float64{0, 10, 20},
		Segs: []model.Linear{
			{Slope: 1, Intercept: 0},
			{Slope: 3, Intercept: -20},
		},
	}
	pm := PairModel{Spline: sp}
	// Band [5, 16]: segment 1 gives x ∈ [5,10], segment 2 gives x ∈ [10,12].
	lo, hi, ok := pm.InvertBand(5, 16)
	if !ok {
		t.Fatal("band should be feasible")
	}
	if math.Abs(lo-5) > 1e-9 || math.Abs(hi-12) > 1e-9 {
		t.Errorf("InvertBand = [%g,%g], want [5,12]", lo, hi)
	}
	// Band entirely below the model's range on the second segment only.
	lo, hi, ok = pm.InvertBand(25, 31)
	if !ok {
		t.Fatal("band on the steep segment should be feasible")
	}
	if math.Abs(lo-15) > 1e-9 || math.Abs(hi-17) > 1e-9 {
		t.Errorf("InvertBand = [%g,%g], want [15,17]", lo, hi)
	}
	// InvertBand must cover every x whose prediction lies in the band.
	for x := -5.0; x < 30; x += 0.25 {
		y := pm.Predict(x)
		lo, hi, ok := pm.InvertBand(y-0.001, y+0.001)
		if !ok || x < lo-1e-9 || x > hi+1e-9 {
			t.Fatalf("x=%g predicts %g but InvertBand [%g,%g] ok=%v misses it", x, y, lo, hi, ok)
		}
	}
}

func TestSplineRejectsIndependentColumns(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tab := dataset.NewTable([]string{"a", "b"})
	for i := 0; i < 20000; i++ {
		tab.Append([]float64{rng.Float64() * 100, rng.Float64() * 100})
	}
	res, err := Detect(tab, splineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 0 {
		t.Errorf("independent columns produced spline groups: %+v", res.Groups)
	}
}

func TestSplineModelBytesCounted(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tab := curvedTable(rng, 20000, 3)
	resLin, err := Detect(tab, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	resSp, err := Detect(tab, splineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(resSp.Groups) == 1 && len(resLin.Groups) == 1 {
		if resSp.ModelBytes() <= resLin.ModelBytes() {
			t.Errorf("spline model bytes %d should exceed linear %d",
				resSp.ModelBytes(), resLin.ModelBytes())
		}
	}
}
