package softfd

import (
	"math/rand"
	"sort"
)

// buildGroups merges accepted pairs into connected components (the paper's
// "merge all groups that have an attribute in common"), elects one
// predictor per component, and equips every other member with a direct
// model from that predictor. Members for which no acceptable direct model
// exists are dropped from the group and remain ordinary indexed columns.
func buildGroups(pairs []PairModel, cols [][]float64, cfg Config, rng *rand.Rand) []Group {
	if len(pairs) == 0 {
		return nil
	}
	uf := newUnionFind()
	for _, p := range pairs {
		uf.union(p.X, p.D)
	}

	components := make(map[int][]int)
	for _, c := range uf.nodes() {
		root := uf.find(c)
		components[root] = append(components[root], c)
	}

	// Direct-model lookup.
	direct := make(map[[2]int]PairModel, len(pairs))
	for _, p := range pairs {
		key := [2]int{p.X, p.D}
		if old, ok := direct[key]; !ok || p.R2 > old.R2 {
			direct[key] = p
		}
	}

	var groups []Group
	for _, members := range components {
		if len(members) < 2 {
			continue
		}
		sort.Ints(members)
		g, ok := electPredictor(members, direct, cols, cfg, rng)
		if ok {
			groups = append(groups, g)
		}
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i].Predictor < groups[j].Predictor })
	return groups
}

// electPredictor picks the member with the greatest total R² to the others
// (ties: lowest column id) and assembles the group's models.
func electPredictor(members []int, direct map[[2]int]PairModel, cols [][]float64, cfg Config, rng *rand.Rand) (Group, bool) {
	bestScore := -1.0
	best := members[0]
	for _, cand := range members {
		score := 0.0
		for _, other := range members {
			if other == cand {
				continue
			}
			if p, ok := direct[[2]int{cand, other}]; ok {
				score += p.R2
			}
		}
		if score > bestScore {
			bestScore, best = score, cand
		}
	}

	g := Group{Predictor: best}
	g.Members = append(g.Members, best)
	for _, m := range members {
		if m == best {
			continue
		}
		pm, ok := direct[[2]int{best, m}]
		if !ok {
			// Transitively grouped member without a direct model: try to
			// fit one now; drop the member if it does not qualify.
			pm, ok = fitDirect(cols[best], cols[m], best, m, cfg, rng)
			if !ok {
				continue
			}
		}
		g.Members = append(g.Members, m)
		g.Models = append(g.Models, pm)
	}
	sort.Ints(g.Members)
	if len(g.Members) < 2 {
		return Group{}, false
	}
	return g, true
}

// fitDirect learns a model for a transitively connected pair with the same
// acceptance pipeline used for direct pairs.
func fitDirect(xs, ys []float64, xi, yi int, cfg Config, rng *rand.Rand) (PairModel, bool) {
	return fitPair(xs, ys, xi, yi, cfg, rng)
}

// unionFind is a small path-compressing disjoint-set over column ids.
type unionFind struct {
	parent map[int]int
}

func newUnionFind() *unionFind { return &unionFind{parent: make(map[int]int)} }

func (u *unionFind) find(x int) int {
	p, ok := u.parent[x]
	if !ok {
		u.parent[x] = x
		return x
	}
	if p != x {
		p = u.find(p)
		u.parent[x] = p
	}
	return p
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		u.parent[ra] = rb
	}
}

func (u *unionFind) nodes() []int {
	out := make([]int, 0, len(u.parent))
	for k := range u.parent {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
