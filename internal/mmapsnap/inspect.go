package mmapsnap

import (
	"fmt"
	"hash/crc32"
)

// SectionStat describes one v3 section for tooling: its frame, and for
// grid page sections the decoded (in-memory) size of the data region so a
// compression ratio can be reported.
type SectionStat struct {
	ID     string
	Flags  uint32
	Offset uint64
	Len    uint64
	CRC    uint32
	// DecodedBytes is the size of the section's payload once usable for
	// queries: for grid page sections the directory, bitmap, and
	// decompressed row data; for plain sections the payload itself.
	DecodedBytes uint64
	// Compressed marks a grid section whose data region is per-page
	// compressed.
	Compressed bool
	// Cells is the cell count of a grid section (0 otherwise).
	Cells int
}

// Stat is the frame-level description of a v3 blob returned by Inspect.
type Stat struct {
	Version  uint32
	Bytes    uint64
	Sections []SectionStat
	// Shards holds the nested per-shard stats of a sharded snapshot.
	Shards []Stat
}

// Inspect describes a v3 blob without assembling an index: the TOC, and
// per-section on-disk vs decoded sizes. Plain sections are CRC-verified;
// page-structured content is not read (use Verify for that).
func Inspect(data []byte) (Stat, error) {
	entries, err := parseTOC(data)
	if err != nil {
		return Stat{}, err
	}
	st := Stat{Version: Version, Bytes: uint64(len(data))}
	for _, e := range entries {
		s := SectionStat{ID: e.id, Flags: e.flags, Offset: e.off, Len: e.len, CRC: e.crc, DecodedBytes: e.len}
		switch e.id {
		case secPrimary, secOutlGrid:
			sec, err := parseGridSection(data[e.off : e.off+e.len])
			if err != nil {
				return Stat{}, fmt.Errorf("mmapsnap: section %q: %w", e.id, err)
			}
			offsets := asInt64s(sec.offsetsB)
			s.Cells = len(offsets) - 1
			s.Compressed = sec.compressed
			if n := len(offsets); n > 0 {
				mainRows := offsets[n-1]
				decodedData := uint64(mainRows) * uint64(sec.dims) * 8
				s.DecodedBytes = e.len - uint64(len(sec.dataB)) + decodedData
			}
		default:
			if e.flags&flagPages == 0 {
				if _, err := sectionPayload(data, e); err != nil {
					return Stat{}, err
				}
			}
		}
		st.Sections = append(st.Sections, s)
		if isShardSection(e.id) {
			sub, err := Inspect(data[e.off : e.off+e.len])
			if err != nil {
				return Stat{}, fmt.Errorf("mmapsnap: shard section %q: %w", e.id, err)
			}
			st.Shards = append(st.Shards, sub)
		}
	}
	return st, nil
}

// isShardSection reports whether id names a shard sub-blob ("s" + three
// hex digits), as distinct from "sofd" and "shmt".
func isShardSection(id string) bool {
	if len(id) != 4 || id[0] != 's' {
		return false
	}
	for i := 1; i < 4; i++ {
		c := id[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}

// Verify proves a whole blob sound: every section CRC (page-structured
// ones included), every grid section's structure, and — for compressed
// grids — every page blob's CRC, exact consumption, and sort invariant.
// It reads every byte; Open deliberately does not.
func Verify(data []byte) error {
	entries, err := parseTOC(data)
	if err != nil {
		return err
	}
	for _, e := range entries {
		payload := data[e.off : e.off+e.len]
		if got := crc32.Checksum(payload, castagnoli); got != e.crc {
			return fmt.Errorf("%w: section %q has CRC %#08x, want %#08x", ErrChecksum, e.id, got, e.crc)
		}
		switch {
		case e.id == secPrimary || e.id == secOutlGrid:
			sec, err := parseGridSection(payload)
			if err != nil {
				return fmt.Errorf("mmapsnap: section %q: %w", e.id, err)
			}
			if err := verifyGridPages(sec); err != nil {
				return fmt.Errorf("mmapsnap: section %q: %w", e.id, err)
			}
		case isShardSection(e.id):
			if err := Verify(payload); err != nil {
				return fmt.Errorf("mmapsnap: shard section %q: %w", e.id, err)
			}
		}
	}
	return nil
}

// verifyGridPages decodes every compressed page (or checks the raw data
// region length) of one parsed grid section.
func verifyGridPages(sec *gridSection) error {
	offsets, pagedir, err := validateGridDir(sec)
	if err != nil {
		return err
	}
	if !sec.compressed {
		return nil
	}
	nCells := len(offsets) - 1
	var buf []float64
	for c := 0; c < nCells; c++ {
		rows := int(offsets[c+1] - offsets[c])
		if rows == 0 {
			continue
		}
		if need := rows * sec.dims; cap(buf) < need {
			buf = make([]float64, need)
		}
		blob := sec.dataB[pagedir[c]:pagedir[c+1]]
		if err := decodePage(blob, buf[:rows*sec.dims], rows, sec.dims, sec.sortDim); err != nil {
			return fmt.Errorf("cell %d: %w", c, err)
		}
	}
	return nil
}
