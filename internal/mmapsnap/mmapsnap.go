// Package mmapsnap implements COAXSNAP format version 3: a snapshot layout
// whose hot sections — grid directory, row pages, tombstone bitmaps — are
// fixed-width little-endian regions placed on 64-byte boundaries, so a
// reader can serve queries straight out of an mmap'd file instead of
// decoding the whole snapshot into heap. Optional per-page columnar
// compression (delta + bit-packing for integer-valued columns,
// frame-of-reference XOR packing for floats) trades the zero-copy alias
// for lazy per-cell decompression into a small bounded LRU of decoded
// pages.
//
// # Container layout (version 3)
//
// All integers are little-endian. A "blob" is one self-contained v3
// snapshot: the whole file for a single index, or a nested sub-blob per
// shard. Every offset below is relative to the blob's first byte, and the
// writer 64-byte-aligns each page-structured section, so mapping the file
// at any page-aligned address aligns every region.
//
//	header:
//	  magic        [8]byte  "COAXSNAP"
//	  version      uint32   3
//	  sectionCount uint32
//	sectionCount × TOC entry (32 bytes each):
//	  id      [4]byte  ASCII section tag
//	  flags   uint32   bit 0: page-structured (alias-mapped, 64-aligned)
//	  offset  uint64   payload offset from blob start
//	  length  uint64   payload length in bytes
//	  crc32c  uint32   Castagnoli CRC of the payload
//	  pad     uint32   zero
//	payloads at their recorded offsets
//
// Plain sections ("meta", "sofd", "lifs", "cols", "ortr", "shmt") hold
// binio payloads exactly like format v2 and are CRC-verified eagerly at
// open. Page-structured sections ("pgr3", "ogr3", shard sub-blobs
// "s000"…) are *not* checksummed at open — that would force reading every
// byte and defeat O(1) start — their structure is bounds-checked eagerly,
// their content verified lazily (each compressed page carries its own
// CRC) or on demand via Verify.
//
// The lifecycle section "lifs" carries only the scalar state (epoch,
// staleness baseline, drift tracker); tombstones live as bitmap regions
// inside the grid page sections, unlike v2's slot lists.
//
// # Grid page section ("pgr3" primary / "ogr3" grid outliers)
//
//	u64 headerLen
//	binio header: grid config, partition bounds, overflow pages, a region
//	  table (offset/length of each region below, relative to the section),
//	  and a compressed flag
//	padding to 64
//	offsets region   (cells+1) × i64   row offsets (the grid directory)
//	dead region      bitmap words, u64 each (may be empty)
//	pagedir region   (cells+1) × u64   compressed only: per-cell blob ends
//	data region      uncompressed: rows×dims f64, aliased zero-copy;
//	                 compressed: concatenated per-cell blobs (see colcodec)
//
// R-tree outliers ("ortr") reuse the v2 pre-order codec and are decoded to
// heap at open: their leaf entries alias row storage in a pointer
// structure that has no flat fixed-width form; the grid outlier index (the
// default kind) gets true mapped pages.
package mmapsnap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Version is the snapshot format version this package reads and writes.
const Version = 3

var magic = [8]byte{'C', 'O', 'A', 'X', 'S', 'N', 'A', 'P'}

// Section tags. Plain sections reuse the v2 payload codecs.
const (
	secMeta      = "meta"
	secSoftFD    = "sofd"
	secLifecycle = "lifs"
	secColumns   = "cols"
	secPrimary   = "pgr3"
	secOutlGrid  = "ogr3"
	secOutlRTree = "ortr"
	secShardMeta = "shmt"
)

// flagPages marks a section whose payload is page-structured: 64-byte
// aligned, alias-mapped, not CRC-verified at open.
const flagPages = 1

// pageAlign is the alignment of every page-structured section and of each
// fixed-width region inside a grid page section.
const pageAlign = 64

// Sentinel errors. Open wraps them with positional detail.
var (
	ErrBadMagic  = errors.New("mmapsnap: bad magic (not a COAX snapshot)")
	ErrVersion   = errors.New("mmapsnap: not a version-3 snapshot")
	ErrTruncated = errors.New("mmapsnap: truncated snapshot")
	ErrLayout    = errors.New("mmapsnap: invalid section layout")
	ErrChecksum  = errors.New("mmapsnap: section checksum mismatch")
	// ErrPage is the sticky error a page store records when a lazily
	// decoded page is corrupt; see Snapshot.PageErr.
	ErrPage = errors.New("mmapsnap: corrupt page")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func shardSection(i int) string { return fmt.Sprintf("s%03x", i) }

// tocEntry is one parsed table-of-contents record.
type tocEntry struct {
	id    string
	flags uint32
	off   uint64
	len   uint64
	crc   uint32
}

const headerSize = 16
const tocEntrySize = 32

func align64(n int) int { return (n + pageAlign - 1) &^ (pageAlign - 1) }

// PeekVersion reports the format version of a snapshot prefix, or an error
// when the magic is absent. It needs only the first 12 bytes.
func PeekVersion(head []byte) (uint32, error) {
	if len(head) < 12 {
		return 0, fmt.Errorf("%w: %d header bytes", ErrTruncated, len(head))
	}
	for i, b := range magic {
		if head[i] != b {
			return 0, ErrBadMagic
		}
	}
	return binary.LittleEndian.Uint32(head[8:]), nil
}

// parseTOC validates the blob frame: magic, version, a table of contents
// whose every entry lies inside the blob, page-structured sections
// 64-byte aligned, and no overlap with the header area. Payload content is
// not touched.
func parseTOC(blob []byte) ([]tocEntry, error) {
	v, err := PeekVersion(blob)
	if err != nil {
		return nil, err
	}
	if v != Version {
		return nil, fmt.Errorf("%w: file has version %d", ErrVersion, v)
	}
	if len(blob) < headerSize {
		return nil, fmt.Errorf("%w: %d header bytes", ErrTruncated, len(blob))
	}
	count := binary.LittleEndian.Uint32(blob[12:])
	tocEnd := uint64(headerSize) + uint64(count)*tocEntrySize
	if tocEnd > uint64(len(blob)) {
		return nil, fmt.Errorf("%w: %d TOC entries need %d bytes, blob has %d", ErrTruncated, count, tocEnd, len(blob))
	}
	entries := make([]tocEntry, 0, count)
	seen := make(map[string]bool, count)
	for i := uint32(0); i < count; i++ {
		rec := blob[headerSize+int(i)*tocEntrySize:]
		e := tocEntry{
			id:    string(rec[:4]),
			flags: binary.LittleEndian.Uint32(rec[4:]),
			off:   binary.LittleEndian.Uint64(rec[8:]),
			len:   binary.LittleEndian.Uint64(rec[16:]),
			crc:   binary.LittleEndian.Uint32(rec[24:]),
		}
		if seen[e.id] {
			return nil, fmt.Errorf("%w: duplicate section %q", ErrLayout, e.id)
		}
		seen[e.id] = true
		if e.off < tocEnd || e.off+e.len < e.off || e.off+e.len > uint64(len(blob)) {
			return nil, fmt.Errorf("%w: section %q spans [%d,%d) outside blob of %d bytes",
				ErrLayout, e.id, e.off, e.off+e.len, len(blob))
		}
		if e.flags&flagPages != 0 && e.off%pageAlign != 0 {
			return nil, fmt.Errorf("%w: page section %q at unaligned offset %d", ErrLayout, e.id, e.off)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// sectionPayload returns a section's bytes, CRC-verified for plain
// sections (page-structured content is verified lazily or via Verify).
func sectionPayload(blob []byte, e tocEntry) ([]byte, error) {
	p := blob[e.off : e.off+e.len]
	if e.flags&flagPages == 0 {
		if got := crc32.Checksum(p, castagnoli); got != e.crc {
			return nil, fmt.Errorf("%w: section %q has CRC %#08x, want %#08x", ErrChecksum, e.id, got, e.crc)
		}
	}
	return p, nil
}
