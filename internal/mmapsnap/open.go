package mmapsnap

import (
	"fmt"
	"io"
	"os"
	"unsafe"

	"github.com/coax-index/coax/internal/binio"
	"github.com/coax-index/coax/internal/core"
	"github.com/coax-index/coax/internal/gridfile"
	"github.com/coax-index/coax/internal/rtree"
	"github.com/coax-index/coax/internal/shard"
)

// OpenOptions controls how a v3 snapshot is opened.
type OpenOptions struct {
	// PageCacheBytes bounds the decoded-page LRU shared by all compressed
	// grid sections of this snapshot; 0 means DefaultPageCacheBytes.
	PageCacheBytes int64
}

// Snapshot is an opened v3 snapshot: a single index or a sharded one,
// backed by a mapping, a heap buffer, or caller-owned bytes.
type Snapshot struct {
	single  *shardedOrSingle
	mapping *mapping // non-nil when OpenFile owns the backing memory
	mapped  bool     // true when the backing memory is an actual mmap
	errs    *errBox
}

// shardedOrSingle keeps exactly one of the two index shapes.
type shardedOrSingle struct {
	idx *core.COAX
	sh  *shard.Sharded
}

// Index returns the single index, or nil for a sharded snapshot.
func (s *Snapshot) Index() *core.COAX {
	if s.single == nil {
		return nil
	}
	return s.single.idx
}

// Sharded returns the sharded index, or nil for a single-index snapshot.
func (s *Snapshot) Sharded() *shard.Sharded {
	if s.single == nil {
		return nil
	}
	return s.single.sh
}

// Mapped reports whether queries are served from an mmap'd region rather
// than resident heap.
func (s *Snapshot) Mapped() bool { return s.mapped }

// PageErr returns the first lazily-detected page corruption, if any. The
// scan path cannot surface an error mid-query — a corrupt compressed page
// reads as empty — so callers that need a guarantee check this after
// querying, or run Verify up front.
func (s *Snapshot) PageErr() error { return s.errs.get() }

// Close releases the mapping. The snapshot's indexes must not be used
// afterwards: their pages alias the mapped region.
func (s *Snapshot) Close() error {
	if s.mapping == nil {
		return nil
	}
	m := s.mapping
	s.mapping = nil
	return m.close()
}

// openState carries the per-open shared machinery into nested blobs.
type openState struct {
	cache  *pageLRU
	errs   *errBox
	nextID int
}

func (st *openState) storeID() int {
	id := st.nextID
	st.nextID++
	return id
}

// OpenBytes opens a v3 snapshot over data. When data is 64-byte aligned
// (an mmap'd file, or a buffer from alignedBuffer) the fixed-width regions
// are aliased zero-copy; otherwise the blob is first copied into an
// aligned buffer. The returned snapshot does not own data.
func OpenBytes(data []byte, opt OpenOptions) (*Snapshot, error) {
	if len(data) > 0 && uintptr(unsafe.Pointer(&data[0]))%pageAlign != 0 {
		buf := alignedBuffer(len(data))
		copy(buf, data)
		data = buf
	}
	return openBlob(data, opt, nil, false)
}

func openBlob(data []byte, opt OpenOptions, m *mapping, mapped bool) (*Snapshot, error) {
	st := &openState{cache: newPageLRU(opt.PageCacheBytes), errs: &errBox{}}
	entries, err := parseTOC(data)
	if err != nil {
		return nil, err
	}
	sn := &Snapshot{mapping: m, mapped: mapped, errs: st.errs}
	if e, ok := find(entries, secShardMeta); ok {
		sh, err := openSharded(data, entries, e, st)
		if err != nil {
			return nil, err
		}
		sn.single = &shardedOrSingle{sh: sh}
		return sn, nil
	}
	idx, err := openSingle(data, entries, st)
	if err != nil {
		return nil, err
	}
	sn.single = &shardedOrSingle{idx: idx}
	return sn, nil
}

func find(entries []tocEntry, id string) (tocEntry, bool) {
	for _, e := range entries {
		if e.id == id {
			return e, true
		}
	}
	return tocEntry{}, false
}

// attach parses a plain binio section payload with an attach-style codec,
// requiring exact consumption.
func attach(blob []byte, entries []tocEntry, id string, required bool, fn func(*binio.Reader) error) error {
	e, ok := find(entries, id)
	if !ok {
		if required {
			return fmt.Errorf("mmapsnap: missing %q section", id)
		}
		return nil
	}
	payload, err := sectionPayload(blob, e)
	if err != nil {
		return err
	}
	r := binio.NewReader(payload)
	if err := fn(r); err != nil {
		return fmt.Errorf("mmapsnap: section %q: %w", id, err)
	}
	if err := r.Close(); err != nil {
		return fmt.Errorf("mmapsnap: section %q: %w", id, err)
	}
	return nil
}

// openSingle assembles one COAX index from a single-index blob.
func openSingle(blob []byte, entries []tocEntry, st *openState) (*core.COAX, error) {
	var idx *core.COAX
	err := attach(blob, entries, secMeta, true, func(r *binio.Reader) error {
		var err error
		idx, err = core.DecodeMeta(r)
		return err
	})
	if err != nil {
		return nil, err
	}
	if err := attach(blob, entries, secSoftFD, true, idx.DecodeAttachFD); err != nil {
		return nil, err
	}
	if e, ok := find(entries, secPrimary); ok {
		g, err := openGridEntry(blob, e, st)
		if err != nil {
			return nil, err
		}
		if err := idx.AttachPrimary(g); err != nil {
			return nil, fmt.Errorf("mmapsnap: section %q: %w", e.id, err)
		}
	}
	if e, ok := find(entries, secOutlGrid); ok {
		g, err := openGridEntry(blob, e, st)
		if err != nil {
			return nil, err
		}
		if err := idx.AttachOutliers(g); err != nil {
			return nil, fmt.Errorf("mmapsnap: section %q: %w", e.id, err)
		}
	}
	if e, ok := find(entries, secOutlRTree); ok {
		payload, err := sectionPayload(blob, e)
		if err != nil {
			return nil, err
		}
		r := binio.NewReader(payload)
		rt, err := rtree.Decode(r)
		if err != nil {
			return nil, fmt.Errorf("mmapsnap: section %q: %w", e.id, err)
		}
		if err := r.Close(); err != nil {
			return nil, fmt.Errorf("mmapsnap: section %q: %w", e.id, err)
		}
		if err := idx.AttachOutliers(rt); err != nil {
			return nil, fmt.Errorf("mmapsnap: section %q: %w", e.id, err)
		}
	}
	if err := attach(blob, entries, secLifecycle, true, idx.DecodeAttachLifecycleScalars); err != nil {
		return nil, err
	}
	if err := attach(blob, entries, secColumns, false, idx.DecodeAttachColumns); err != nil {
		return nil, err
	}
	if err := idx.FinishDecode(); err != nil {
		return nil, fmt.Errorf("mmapsnap: %w", err)
	}
	return idx, nil
}

func openGridEntry(blob []byte, e tocEntry, st *openState) (*gridfile.GridFile, error) {
	payload, err := sectionPayload(blob, e)
	if err != nil {
		return nil, err
	}
	sec, err := parseGridSection(payload)
	if err != nil {
		return nil, fmt.Errorf("mmapsnap: section %q: %w", e.id, err)
	}
	g, err := openGridSection(sec, st.storeID(), st.cache, st.errs)
	if err != nil {
		return nil, fmt.Errorf("mmapsnap: section %q: %w", e.id, err)
	}
	return g, nil
}

// openSharded assembles a sharded index: the layout section plus one
// nested v3 blob per shard, all sharing this open's page cache and error
// latch.
func openSharded(blob []byte, entries []tocEntry, layout tocEntry, st *openState) (*shard.Sharded, error) {
	payload, err := sectionPayload(blob, layout)
	if err != nil {
		return nil, err
	}
	r := binio.NewReader(payload)
	k := r.Int()
	partition := shard.Partition(r.Int())
	col := r.Int()
	cuts := r.Float64s()
	dims := r.Int()
	if err := r.Close(); err != nil {
		return nil, fmt.Errorf("mmapsnap: section %q: %w", secShardMeta, err)
	}
	if k < 1 || k > shard.MaxShards {
		return nil, fmt.Errorf("mmapsnap: shard count %d out of range [1,%d]", k, shard.MaxShards)
	}
	shards := make([]*core.COAX, k)
	for i := range shards {
		id := shardSection(i)
		e, ok := find(entries, id)
		if !ok {
			return nil, fmt.Errorf("mmapsnap: missing shard section %q", id)
		}
		sub := blob[e.off : e.off+e.len]
		subEntries, err := parseTOC(sub)
		if err != nil {
			return nil, fmt.Errorf("mmapsnap: shard %d: %w", i, err)
		}
		if _, nested := find(subEntries, secShardMeta); nested {
			return nil, fmt.Errorf("%w: shard %d is itself sharded", ErrLayout, i)
		}
		idx, err := openSingle(sub, subEntries, st)
		if err != nil {
			return nil, fmt.Errorf("mmapsnap: shard %d: %w", i, err)
		}
		if idx.Dims() != dims {
			return nil, fmt.Errorf("mmapsnap: shard %d has %d dims, layout says %d", i, idx.Dims(), dims)
		}
		shards[i] = idx
	}
	s, err := shard.Reassemble(shards, partition, col, cuts, 0)
	if err != nil {
		return nil, fmt.Errorf("mmapsnap: %w", err)
	}
	return s, nil
}

// IsSharded reports (without assembling anything) whether a v3 blob holds
// a sharded index.
func IsSharded(data []byte) (bool, error) {
	entries, err := parseTOC(data)
	if err != nil {
		return false, err
	}
	_, ok := find(entries, secShardMeta)
	return ok, nil
}

// alignedBuffer allocates n bytes whose first byte sits on a 64-byte
// boundary, so region aliasing works exactly as over an mmap.
func alignedBuffer(n int) []byte {
	b := make([]byte, n+pageAlign-1)
	off := 0
	if n > 0 {
		off = int((pageAlign - uintptr(unsafe.Pointer(&b[0]))%pageAlign) % pageAlign)
	}
	return b[off : off+n : off+n]
}

// readAligned reads a whole file into an aligned buffer — the open path
// for platforms (or filesystems) where mmap is unavailable.
func readAligned(f *os.File, size int64) ([]byte, error) {
	if size < 0 || size > int64(int(^uint(0)>>1)) {
		return nil, fmt.Errorf("mmapsnap: file of %d bytes exceeds address space", size)
	}
	data := alignedBuffer(int(size))
	if _, err := io.ReadFull(f, data); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	return data, nil
}
