package mmapsnap

import (
	"container/list"
	"fmt"
	"sync"
)

// DefaultPageCacheBytes bounds the decoded-page LRU shared by every
// compressed grid section of one opened snapshot.
const DefaultPageCacheBytes = 32 << 20

// pageKey identifies one decoded page: which store (a snapshot may map
// several grids — primary and outliers, times shards) and which cell.
type pageKey struct {
	store int
	cell  int
}

// pageLRU is a byte-bounded cache of decoded pages. Decoding happens
// outside the lock (two goroutines may race to decode the same page; both
// results are identical, one wins). Evicted slices stay valid for callers
// already iterating them — the GC reclaims them when the last reference
// drops — so eviction never invalidates an in-flight scan.
type pageLRU struct {
	mu       sync.Mutex
	capacity int64
	size     int64
	order    *list.List // front = most recent; values are pageKey
	entries  map[pageKey]*list.Element
	pages    map[pageKey][]float64
}

func newPageLRU(capacity int64) *pageLRU {
	if capacity <= 0 {
		capacity = DefaultPageCacheBytes
	}
	return &pageLRU{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[pageKey]*list.Element),
		pages:    make(map[pageKey][]float64),
	}
}

func (c *pageLRU) get(k pageKey) ([]float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return c.pages[k], true
}

func (c *pageLRU) put(k pageKey, page []float64) {
	cost := int64(len(page) * 8)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[k]; ok {
		return // lost a decode race; keep the incumbent
	}
	c.entries[k] = c.order.PushFront(k)
	c.pages[k] = page
	c.size += cost
	for c.size > c.capacity && c.order.Len() > 1 {
		el := c.order.Back()
		old := el.Value.(pageKey)
		c.order.Remove(el)
		c.size -= int64(len(c.pages[old]) * 8)
		delete(c.entries, old)
		delete(c.pages, old)
	}
}

// gridStore implements gridfile.PageStore over a compressed data region:
// CellPage looks the cell up in the shared LRU, decoding its blob on a
// miss. A corrupt blob records a sticky error on the snapshot and reads as
// an empty page — the query path cannot return an error mid-scan, so the
// caller checks Snapshot.PageErr after querying (and Verify can prove the
// whole file sound up front).
type gridStore struct {
	id      int
	data    []byte   // compressed data region (aliases the mapping)
	pagedir []uint64 // cells+1 blob-end offsets into data
	rows    []int64  // cells+1 row offsets (the grid directory)
	dims    int
	sortDim int
	cache   *pageLRU
	errs    *errBox
}

// errBox latches the first page error of an opened snapshot.
type errBox struct {
	mu  sync.Mutex
	err error
}

func (b *errBox) set(err error) {
	b.mu.Lock()
	if b.err == nil {
		b.err = err
	}
	b.mu.Unlock()
}

func (b *errBox) get() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.err
}

// CellPage implements gridfile.PageStore.
func (s *gridStore) CellPage(c int) []float64 {
	rows := int(s.rows[c+1] - s.rows[c])
	if rows == 0 {
		return nil
	}
	k := pageKey{store: s.id, cell: c}
	if page, ok := s.cache.get(k); ok {
		return page
	}
	page := make([]float64, rows*s.dims)
	blob := s.data[s.pagedir[c]:s.pagedir[c+1]]
	if err := decodePage(blob, page, rows, s.dims, s.sortDim); err != nil {
		s.errs.set(fmt.Errorf("cell %d: %w", c, err))
		return nil
	}
	s.cache.put(k, page)
	return page
}
