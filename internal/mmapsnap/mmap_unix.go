//go:build unix

package mmapsnap

import (
	"fmt"
	"os"
	"syscall"
)

// mapping owns the backing memory of an opened snapshot file: a read-only
// mmap on unix platforms. The mapping survives closing the file
// descriptor, and page-cache residency — not heap — is what holds the row
// data, which is the whole point of the format.
type mapping struct {
	data  []byte
	mmapd bool
}

func (m *mapping) close() error {
	if !m.mmapd || m.data == nil {
		m.data = nil
		return nil
	}
	data := m.data
	m.data = nil
	return syscall.Munmap(data)
}

// mapFile maps f read-only. On any mmap failure (exotic filesystems,
// resource limits) it falls back to an aligned heap read, so OpenFile
// works everywhere — just without the zero-copy benefit.
func mapFile(f *os.File, size int64) (*mapping, bool, error) {
	if size > int64(int(^uint(0)>>1)) {
		return nil, false, fmt.Errorf("mmapsnap: file of %d bytes exceeds address space", size)
	}
	if size > 0 {
		data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
		if err == nil {
			return &mapping{data: data, mmapd: true}, true, nil
		}
	}
	data, err := readAligned(f, size)
	if err != nil {
		return nil, false, err
	}
	return &mapping{data: data}, false, nil
}

// OpenFile opens a version-3 snapshot file, mapping it when the platform
// allows and falling back to an aligned heap read otherwise. The returned
// snapshot must be Closed when no longer in use.
func OpenFile(path string, opt OpenOptions) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	m, mapped, err := mapFile(f, st.Size())
	if err != nil {
		return nil, err
	}
	sn, err := openBlob(m.data, opt, m, mapped)
	if err != nil {
		m.close()
		return nil, err
	}
	return sn, nil
}
