package mmapsnap

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"unsafe"

	"github.com/coax-index/coax/internal/binio"
	"github.com/coax-index/coax/internal/gridfile"
)

// Grid page section codec. The section holds a small binio header (grid
// configuration, boundary vectors, heap-owned overflow pages, a region
// table) followed by 64-byte-aligned fixed-width regions: the offsets
// directory, the tombstone bitmap, the optional compressed-page directory,
// and the row data itself. Uncompressed data is aliased straight out of
// the mapping; compressed data decodes lazily per cell through a
// gridStore.

// gridSection is the parsed header plus region byte ranges.
type gridSection struct {
	gridDims    []int
	sortDim     int
	cellsPerDim int
	mode        int
	label       string
	dims        int
	bounds      [][]float64
	overflow    map[int][]float64
	compressed  bool

	offsetsB []byte // (cells+1) × i64
	deadB    []byte // bitmap words
	pagedirB []byte // compressed only: (cells+1) × u64
	dataB    []byte
}

// regionTable are the fixed-width offset/length pairs at the header tail.
type regionTable struct {
	offsetsOff, offsetsLen uint64
	deadOff, deadLen       uint64
	pagedirOff, pagedirLen uint64
	dataOff, dataLen       uint64
}

// encodeGridSection lays a grid file out as a page section payload. When
// compress is set, each cell page is compressed independently (empty cells
// occupy zero bytes); otherwise the data region is the raw row-major
// payload, alias-mappable on open.
func encodeGridSection(g *gridfile.GridFile, compress bool) []byte {
	p := g.ExportParts()
	nCells := len(p.Offsets) - 1
	mainRows := int(p.Offsets[nCells])

	var (
		pagedir []uint64
		blobs   [][]byte
		dataLen int
	)
	if compress {
		pagedir = make([]uint64, nCells+1)
		blobs = make([][]byte, 0, nCells)
		g.CellPages(func(c int, page []float64) {
			rows := len(page) / p.Dims
			if rows > 0 {
				blob := encodePage(page, rows, p.Dims)
				blobs = append(blobs, blob)
				dataLen += len(blob)
			}
			pagedir[c+1] = uint64(dataLen)
		})
	} else {
		dataLen = mainRows * p.Dims * 8
	}

	// The header's fixed-width region table makes its length independent of
	// the values inside, so one dry run sizes it and the real offsets are
	// written on the second pass.
	emit := func(rt regionTable) []byte {
		hw := binio.NewWriter()
		hw.Ints(p.GridDims)
		hw.Int(p.SortDim)
		hw.Int(p.CellsPerDim)
		hw.Int(int(p.Mode))
		hw.String(p.Label)
		hw.Int(p.Dims)
		hw.Uint64(uint64(len(p.Bounds)))
		for _, b := range p.Bounds {
			hw.Float64s(b)
		}
		cells := make([]int, 0, len(p.Overflow))
		for c := range p.Overflow {
			cells = append(cells, c)
		}
		sort.Ints(cells)
		hw.Uint64(uint64(len(cells)))
		for _, c := range cells {
			hw.Int(c)
			hw.Float64s(p.Overflow[c])
		}
		hw.Bool(compress)
		for _, v := range []uint64{
			rt.offsetsOff, rt.offsetsLen, rt.deadOff, rt.deadLen,
			rt.pagedirOff, rt.pagedirLen, rt.dataOff, rt.dataLen,
		} {
			hw.Uint64(v)
		}
		return hw.Bytes()
	}

	headerLen := len(emit(regionTable{}))
	var rt regionTable
	cursor := align64(8 + headerLen)
	place := func(n int) (off uint64) {
		off = uint64(cursor)
		cursor = align64(cursor + n)
		return off
	}
	rt.offsetsLen = uint64((nCells + 1) * 8)
	rt.offsetsOff = place(int(rt.offsetsLen))
	rt.deadLen = uint64(len(p.DeadWords) * 8)
	rt.deadOff = place(int(rt.deadLen))
	if compress {
		rt.pagedirLen = uint64((nCells + 1) * 8)
		rt.pagedirOff = place(int(rt.pagedirLen))
	}
	rt.dataLen = uint64(dataLen)
	rt.dataOff = place(dataLen)

	out := make([]byte, 0, cursor)
	out = binary.LittleEndian.AppendUint64(out, uint64(headerLen))
	out = append(out, emit(rt)...)
	pad := func(to uint64) {
		for uint64(len(out)) < to {
			out = append(out, 0)
		}
	}
	pad(rt.offsetsOff)
	for _, v := range p.Offsets {
		out = binary.LittleEndian.AppendUint64(out, uint64(v))
	}
	pad(rt.deadOff)
	for _, w := range p.DeadWords {
		out = binary.LittleEndian.AppendUint64(out, w)
	}
	if compress {
		pad(rt.pagedirOff)
		for _, v := range pagedir {
			out = binary.LittleEndian.AppendUint64(out, v)
		}
	}
	pad(rt.dataOff)
	if compress {
		for _, blob := range blobs {
			out = append(out, blob...)
		}
	} else {
		g.CellPages(func(c int, page []float64) {
			for _, v := range page {
				out = binary.LittleEndian.AppendUint64(out, math.Float64bits(v))
			}
		})
	}
	return out
}

// parseGridSection validates the header and region table of a grid page
// section: every region must lie inside the payload on a 64-byte boundary
// with exactly the length the directory implies, so no later access can
// read past the mapping.
func parseGridSection(payload []byte) (*gridSection, error) {
	if len(payload) < 8 {
		return nil, fmt.Errorf("%w: grid section of %d bytes", ErrTruncated, len(payload))
	}
	headerLen := binary.LittleEndian.Uint64(payload)
	if headerLen > uint64(len(payload))-8 {
		return nil, fmt.Errorf("%w: grid header of %d bytes in section of %d", ErrTruncated, headerLen, len(payload))
	}
	hr := binio.NewReader(payload[8 : 8+headerLen])
	s := &gridSection{
		gridDims:    hr.Ints(),
		sortDim:     hr.Int(),
		cellsPerDim: hr.Int(),
		mode:        hr.Int(),
		label:       hr.String(),
		dims:        hr.Int(),
	}
	nBounds := hr.Uint64()
	if hr.Err() != nil {
		return nil, fmt.Errorf("%w: grid header: %v", ErrLayout, hr.Err())
	}
	if nBounds != uint64(len(s.gridDims)) {
		return nil, fmt.Errorf("%w: %d boundary vectors for %d grid dims", ErrLayout, nBounds, len(s.gridDims))
	}
	s.bounds = make([][]float64, nBounds)
	for i := range s.bounds {
		s.bounds[i] = hr.Float64s()
	}
	nOverflow := hr.Uint64()
	if hr.Err() != nil {
		return nil, fmt.Errorf("%w: grid header: %v", ErrLayout, hr.Err())
	}
	for i := uint64(0); i < nOverflow; i++ {
		c := hr.Int()
		page := hr.Float64s()
		if hr.Err() != nil {
			break
		}
		if s.overflow == nil {
			s.overflow = make(map[int][]float64)
		}
		if _, dup := s.overflow[c]; dup {
			return nil, fmt.Errorf("%w: overflow page for cell %d listed twice", ErrLayout, c)
		}
		s.overflow[c] = page
	}
	s.compressed = hr.Bool()
	var rt regionTable
	for _, v := range []*uint64{
		&rt.offsetsOff, &rt.offsetsLen, &rt.deadOff, &rt.deadLen,
		&rt.pagedirOff, &rt.pagedirLen, &rt.dataOff, &rt.dataLen,
	} {
		*v = hr.Uint64()
	}
	if err := hr.Close(); err != nil {
		return nil, fmt.Errorf("%w: grid header: %v", ErrLayout, err)
	}

	region := func(name string, off, length uint64, aligned bool) ([]byte, error) {
		if off+length < off || off+length > uint64(len(payload)) {
			return nil, fmt.Errorf("%w: %s region [%d,%d) outside section of %d bytes",
				ErrLayout, name, off, off+length, len(payload))
		}
		if aligned && off%pageAlign != 0 {
			return nil, fmt.Errorf("%w: %s region at unaligned offset %d", ErrLayout, name, off)
		}
		if off < 8+headerLen && length > 0 {
			return nil, fmt.Errorf("%w: %s region overlaps header", ErrLayout, name)
		}
		return payload[off : off+length], nil
	}
	var err error
	if s.offsetsB, err = region("offsets", rt.offsetsOff, rt.offsetsLen, true); err != nil {
		return nil, err
	}
	if s.deadB, err = region("tombstone", rt.deadOff, rt.deadLen, true); err != nil {
		return nil, err
	}
	if s.pagedirB, err = region("pagedir", rt.pagedirOff, rt.pagedirLen, true); err != nil {
		return nil, err
	}
	if s.dataB, err = region("data", rt.dataOff, rt.dataLen, true); err != nil {
		return nil, err
	}
	if len(s.offsetsB)%8 != 0 || len(s.deadB)%8 != 0 || len(s.pagedirB)%8 != 0 {
		return nil, fmt.Errorf("%w: region length not a multiple of 8", ErrLayout)
	}
	return s, nil
}

// Sanity ceilings on what a grid directory may claim. Together with
// maxPageExpand they guarantee that every size computed from mapped bytes
// fits in uint64 arithmetic and that no row-proportional allocation
// happens before the claim is proven plausible against on-disk bytes.
const (
	maxGridDims = 1 << 12
	maxGridRows = 1 << 48
)

// validateGridDir eagerly proves a parsed section's directory sound — the
// ground truth every page access indexes by — in O(cells), not O(rows):
// monotone offsets, a pagedir consistent with them and with the data
// region, and per-cell decoded sizes within maxPageExpand of the stored
// bytes. Both the open path and Verify go through it.
func validateGridDir(s *gridSection) (offsets []int64, pagedir []uint64, err error) {
	if s.dims < 1 || s.dims > maxGridDims {
		return nil, nil, fmt.Errorf("%w: grid section dims %d", ErrLayout, s.dims)
	}
	offsets = asInt64s(s.offsetsB)
	if len(offsets) == 0 {
		return nil, nil, fmt.Errorf("%w: empty offsets region", ErrLayout)
	}
	nCells := len(offsets) - 1
	if offsets[0] != 0 {
		return nil, nil, fmt.Errorf("%w: offsets start at %d", ErrLayout, offsets[0])
	}
	for c := 1; c <= nCells; c++ {
		if offsets[c] < offsets[c-1] {
			return nil, nil, fmt.Errorf("%w: offsets not monotone at cell %d", ErrLayout, c)
		}
	}
	mainRows := offsets[nCells]
	if mainRows > maxGridRows {
		return nil, nil, fmt.Errorf("%w: directory claims %d rows", ErrLayout, mainRows)
	}
	if !s.compressed {
		if uint64(len(s.dataB)) != uint64(mainRows)*uint64(s.dims)*8 {
			return nil, nil, fmt.Errorf("%w: data region of %d bytes for %d×%d rows", ErrLayout, len(s.dataB), mainRows, s.dims)
		}
		return offsets, nil, nil
	}
	pagedir = asUint64s(s.pagedirB)
	if len(pagedir) != nCells+1 {
		return nil, nil, fmt.Errorf("%w: pagedir has %d entries, directory implies %d", ErrLayout, len(pagedir), nCells+1)
	}
	if pagedir[0] != 0 {
		return nil, nil, fmt.Errorf("%w: pagedir starts at %d", ErrLayout, pagedir[0])
	}
	for c := 1; c <= nCells; c++ {
		if pagedir[c] < pagedir[c-1] {
			return nil, nil, fmt.Errorf("%w: pagedir not monotone at cell %d", ErrLayout, c)
		}
		rows := uint64(offsets[c] - offsets[c-1])
		blobLen := pagedir[c] - pagedir[c-1]
		if rows == 0 && blobLen != 0 {
			return nil, nil, fmt.Errorf("%w: empty cell %d has a %d-byte blob", ErrLayout, c-1, blobLen)
		}
		// rows ≤ maxGridRows and dims ≤ maxGridDims keep this product well
		// inside uint64.
		if blobLen < rows*uint64(s.dims)*8/maxPageExpand {
			return nil, nil, fmt.Errorf("%w: cell %d claims %d rows from a %d-byte blob", ErrLayout, c-1, rows, blobLen)
		}
	}
	if pagedir[nCells] != uint64(len(s.dataB)) {
		return nil, nil, fmt.Errorf("%w: pagedir covers %d data bytes, region has %d", ErrLayout, pagedir[nCells], len(s.dataB))
	}
	return offsets, pagedir, nil
}

// openGridSection assembles a queryable grid file over a parsed section.
// id/cache/errs wire compressed sections into the snapshot's shared page
// LRU and sticky error latch.
func openGridSection(s *gridSection, id int, cache *pageLRU, errs *errBox) (*gridfile.GridFile, error) {
	offsets, pagedir, err := validateGridDir(s)
	if err != nil {
		return nil, err
	}

	parts := gridfile.Parts{
		GridDims:    s.gridDims,
		SortDim:     s.sortDim,
		CellsPerDim: s.cellsPerDim,
		Mode:        gridfile.BoundsMode(s.mode),
		Label:       s.label,
		Dims:        s.dims,
		Bounds:      s.bounds,
		Offsets:     offsets,
		Overflow:    s.overflow,
		DeadWords:   append([]uint64(nil), asUint64s(s.deadB)...), // heap copy: deletes mutate it
		TrustPages:  true,
	}
	if s.compressed {
		parts.Store = &gridStore{
			id:      id,
			data:    s.dataB,
			pagedir: pagedir,
			rows:    offsets,
			dims:    s.dims,
			sortDim: s.sortDim,
			cache:   cache,
			errs:    errs,
		}
	} else {
		parts.Data = asFloat64s(s.dataB)
	}
	g, err := gridfile.FromParts(parts)
	if err != nil {
		return nil, fmt.Errorf("mmapsnap: %w", err)
	}
	return g, nil
}

// --- zero-copy region views ---
//
// On little-endian hosts the fixed-width regions are aliased in place:
// every region is 64-byte aligned relative to the blob, and Open only
// hands payloads here when the blob base itself is 64-byte aligned (mmap
// returns page-aligned memory; the fallback and copy paths allocate
// aligned buffers), so the element alignment the casts require always
// holds. Big-endian hosts get a correct-but-copying decode instead.

var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

func asInt64s(b []byte) []int64 {
	if len(b) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), len(b)/8)
	}
	out := make([]int64, len(b)/8)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}

func asUint64s(b []byte) []uint64 {
	if len(b) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), len(b)/8)
	}
	out := make([]uint64, len(b)/8)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[i*8:])
	}
	return out
}

func asFloat64s(b []byte) []float64 {
	if len(b) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), len(b)/8)
	}
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}
