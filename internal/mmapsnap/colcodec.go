package mmapsnap

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"math/bits"
)

// Per-cell page compression. Each grid cell's main page compresses
// independently — the cell is the unit of access on the query path, so no
// cross-page state is needed to decode one. A page blob is:
//
//	u32 crc32c  over everything after these 4 bytes
//	u8  kind    0 = raw row-major page, 1 = columnar
//	kind 0: rows×dims f64 bit patterns
//	kind 1: per column d in 0..dims-1:
//	  u8 enc    0 = raw column, 1 = integer frame-of-reference,
//	            2 = float XOR frame-of-reference
//	  enc 0: rows × f64
//	  enc 1: u64 min (int64 two's complement), u8 width,
//	         ceil(rows*width/64) × u64 packed deltas
//	  enc 2: u64 reference bits, u8 width,
//	         ceil(rows*width/64) × u64 packed XOR residues
//
// Integer frame-of-reference applies only when every value round-trips
// exactly through int64 (correlated key columns — ids, timestamps — in
// practice); deltas against the column minimum are bit-packed at the
// narrowest width that holds the largest. Float columns XOR each value's
// bit pattern against the first row's and bit-pack the residues, which is
// lossless for any distribution and shrinks when high mantissa/exponent
// bits are shared. A column (or the whole page) falls back to raw when
// packing would not shrink it, so a blob is never larger than
// 5 + rows*dims*8 bytes.

const (
	pageRaw      = 0
	pageColumnar = 1

	encRawCol  = 0
	encIntFOR  = 1
	encFloatXR = 2
)

// maxPageExpand caps the decoded-to-stored size ratio of a compressed
// page. Width-0 packed columns make a blob's size independent of its row
// count, so without a cap a tiny corrupt blob could claim an arbitrarily
// large decoded page and drive row-proportional allocations before the
// page CRC is ever checked. The encoder falls back to raw storage for the
// (degenerate, all-columns-near-constant) pages that would exceed it, so
// the decoder can reject over-claiming directories as corrupt.
const maxPageExpand = 1 << 10

// encodePage compresses one row-major page. The result always round-trips
// bit-exactly through decodePage.
func encodePage(page []float64, rows, dims int) []byte {
	rawSize := 5 + rows*dims*8
	cols := make([][]byte, dims)
	colSize := 1 // kind byte
	for d := 0; d < dims; d++ {
		cols[d] = encodeColumn(page, rows, dims, d)
		colSize += len(cols[d])
	}
	blob := make([]byte, 4, min(colSize+4, rawSize))
	if colSize+4 < rawSize && rawSize <= maxPageExpand*(colSize+4) {
		blob = append(blob, pageColumnar)
		for d := 0; d < dims; d++ {
			blob = append(blob, cols[d]...)
		}
	} else {
		blob = append(blob, pageRaw)
		for _, v := range page[:rows*dims] {
			blob = binary.LittleEndian.AppendUint64(blob, math.Float64bits(v))
		}
	}
	binary.LittleEndian.PutUint32(blob, crc32.Checksum(blob[4:], castagnoli))
	return blob
}

// encodeColumn emits one column with the cheapest lossless encoding.
func encodeColumn(page []float64, rows, dims, d int) []byte {
	rawSize := 1 + rows*8

	// Integer frame-of-reference: exact int64 round-trip required for
	// every value (rejecting -0.0, NaN, ±Inf and fractions).
	ints := make([]int64, rows)
	intOK := true
	for r := 0; r < rows; r++ {
		v := page[r*dims+d]
		iv := int64(v)
		if float64(iv) != v || (v == 0 && math.Signbit(v)) {
			intOK = false
			break
		}
		ints[r] = iv
	}
	if intOK && rows > 0 {
		minV := ints[0]
		for _, iv := range ints {
			if iv < minV {
				minV = iv
			}
		}
		var maxDelta uint64
		deltas := make([]uint64, rows)
		for r, iv := range ints {
			// Two's-complement subtraction in uint64 is overflow-safe for
			// any int64 spread.
			dlt := uint64(iv) - uint64(minV)
			deltas[r] = dlt
			if dlt > maxDelta {
				maxDelta = dlt
			}
		}
		width := bits.Len64(maxDelta)
		if size := 10 + packedBytes(rows, width); size < rawSize {
			out := make([]byte, 0, size)
			out = append(out, encIntFOR)
			out = binary.LittleEndian.AppendUint64(out, uint64(minV))
			out = append(out, byte(width))
			return appendPacked(out, deltas, width)
		}
	}

	// Float XOR frame-of-reference: always lossless.
	if rows > 0 {
		ref := math.Float64bits(page[d])
		var maxRes uint64
		res := make([]uint64, rows)
		for r := 0; r < rows; r++ {
			x := math.Float64bits(page[r*dims+d]) ^ ref
			res[r] = x
			if x > maxRes {
				maxRes = x
			}
		}
		width := bits.Len64(maxRes)
		if size := 10 + packedBytes(rows, width); size < rawSize {
			out := make([]byte, 0, size)
			out = append(out, encFloatXR)
			out = binary.LittleEndian.AppendUint64(out, ref)
			out = append(out, byte(width))
			return appendPacked(out, res, width)
		}
	}

	out := make([]byte, 0, rawSize)
	out = append(out, encRawCol)
	for r := 0; r < rows; r++ {
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(page[r*dims+d]))
	}
	return out
}

func packedWords(rows, width int) int { return (rows*width + 63) / 64 }
func packedBytes(rows, width int) int { return packedWords(rows, width) * 8 }

// appendPacked bit-packs vs LSB-first at the given width into out.
func appendPacked(out []byte, vs []uint64, width int) []byte {
	if width == 0 {
		return out
	}
	words := make([]uint64, packedWords(len(vs), width))
	bit := 0
	for _, v := range vs {
		w, off := bit>>6, uint(bit&63)
		words[w] |= v << off
		if off+uint(width) > 64 {
			words[w+1] |= v >> (64 - off)
		}
		bit += width
	}
	for _, w := range words {
		out = binary.LittleEndian.AppendUint64(out, w)
	}
	return out
}

// blobCursor is a bounds-checked reader over one page blob. Unlike
// binio.Reader it is allocation-free on the hot decode path.
type blobCursor struct {
	b   []byte
	off int
}

func (c *blobCursor) take(n int) ([]byte, error) {
	if n < 0 || len(c.b)-c.off < n {
		return nil, fmt.Errorf("%w: blob needs %d bytes at %d, has %d", ErrPage, n, c.off, len(c.b)-c.off)
	}
	s := c.b[c.off : c.off+n]
	c.off += n
	return s, nil
}

func (c *blobCursor) u8() (byte, error) {
	s, err := c.take(1)
	if err != nil {
		return 0, err
	}
	return s[0], nil
}

func (c *blobCursor) u64() (uint64, error) {
	s, err := c.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(s), nil
}

// decodePage decompresses one cell blob into dst (len rows*dims,
// row-major), verifying the blob CRC, exact consumption, and — when a sort
// dimension is set — the page's sort invariant, so a corrupt page can
// never silently desort a binary-searched cell.
func decodePage(blob []byte, dst []float64, rows, dims, sortDim int) error {
	if len(blob) < 5 {
		return fmt.Errorf("%w: blob of %d bytes", ErrPage, len(blob))
	}
	want := binary.LittleEndian.Uint32(blob)
	if got := crc32.Checksum(blob[4:], castagnoli); got != want {
		return fmt.Errorf("%w: page CRC %#08x, want %#08x", ErrPage, got, want)
	}
	c := &blobCursor{b: blob, off: 4}
	kind, err := c.u8()
	if err != nil {
		return err
	}
	switch kind {
	case pageRaw:
		raw, err := c.take(rows * dims * 8)
		if err != nil {
			return err
		}
		for i := range dst[:rows*dims] {
			dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
		}
	case pageColumnar:
		for d := 0; d < dims; d++ {
			if err := decodeColumn(c, dst, rows, dims, d); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("%w: unknown page kind %d", ErrPage, kind)
	}
	if c.off != len(blob) {
		return fmt.Errorf("%w: %d trailing blob bytes", ErrPage, len(blob)-c.off)
	}
	if sortDim >= 0 {
		for r := 1; r < rows; r++ {
			if dst[r*dims+sortDim] < dst[(r-1)*dims+sortDim] {
				return fmt.Errorf("%w: decoded page not sorted on dimension %d at row %d", ErrPage, sortDim, r)
			}
		}
	}
	return nil
}

func decodeColumn(c *blobCursor, dst []float64, rows, dims, d int) error {
	enc, err := c.u8()
	if err != nil {
		return err
	}
	switch enc {
	case encRawCol:
		raw, err := c.take(rows * 8)
		if err != nil {
			return err
		}
		for r := 0; r < rows; r++ {
			dst[r*dims+d] = math.Float64frombits(binary.LittleEndian.Uint64(raw[r*8:]))
		}
		return nil
	case encIntFOR, encFloatXR:
		base, err := c.u64()
		if err != nil {
			return err
		}
		w, err := c.u8()
		if err != nil {
			return err
		}
		width := int(w)
		if width > 64 {
			return fmt.Errorf("%w: pack width %d", ErrPage, width)
		}
		raw, err := c.take(packedBytes(rows, width))
		if err != nil {
			return err
		}
		var mask uint64 = math.MaxUint64
		if width < 64 {
			mask = 1<<uint(width) - 1
		}
		word := func(i int) uint64 { return binary.LittleEndian.Uint64(raw[i*8:]) }
		bit := 0
		for r := 0; r < rows; r++ {
			var v uint64
			if width > 0 {
				wi, off := bit>>6, uint(bit&63)
				v = word(wi) >> off
				if off+uint(width) > 64 {
					v |= word(wi+1) << (64 - off)
				}
				v &= mask
				bit += width
			}
			if enc == encIntFOR {
				dst[r*dims+d] = float64(int64(base + v))
			} else {
				dst[r*dims+d] = math.Float64frombits(base ^ v)
			}
		}
		return nil
	default:
		return fmt.Errorf("%w: unknown column encoding %d", ErrPage, enc)
	}
}
