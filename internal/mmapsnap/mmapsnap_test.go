package mmapsnap

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"github.com/coax-index/coax/internal/core"
	"github.com/coax-index/coax/internal/dataset"
	"github.com/coax-index/coax/internal/index"
	"github.com/coax-index/coax/internal/shard"
	"github.com/coax-index/coax/internal/snapshot"
	"github.com/coax-index/coax/internal/workload"
)

func testTable(t testing.TB, rows int) *dataset.Table {
	t.Helper()
	return dataset.GenerateOSM(dataset.DefaultOSMConfig(rows))
}

func buildIndex(t testing.TB, tab *dataset.Table, kind core.OutlierIndexKind) *core.COAX {
	t.Helper()
	opt := core.DefaultOptions()
	opt.OutlierKind = kind
	opt.SoftFD.SampleCount = 2000
	idx, err := core.Build(tab, opt)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return idx
}

func testQueries(tab *dataset.Table) []index.Rect {
	g := workload.NewGenerator(tab, 7)
	qs := g.PointQueries(15)
	qs = append(qs, g.KNNRects(15, 64)...)
	for d := 0; d < tab.Dims(); d++ {
		qs = append(qs, g.PartialRects(3, []int{d}, 0.2)...)
	}
	qs = append(qs, index.Full(tab.Dims()))
	return qs
}

func sortRows(rows [][]float64) {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}

// requireSameResults proves two indexes answer a query set bit-identically.
func requireSameResults(t *testing.T, want, got index.Interface, queries []index.Rect) {
	t.Helper()
	for qi, q := range queries {
		wr, gr := index.Collect(want, q), index.Collect(got, q)
		sortRows(wr)
		sortRows(gr)
		if len(wr) != len(gr) {
			t.Fatalf("query %d: %d rows heap, %d mapped", qi, len(wr), len(gr))
		}
		for i := range wr {
			for k := range wr[i] {
				if math.Float64bits(wr[i][k]) != math.Float64bits(gr[i][k]) {
					t.Fatalf("query %d row %d col %d: %v != %v (bit-level)", qi, i, k, wr[i][k], gr[i][k])
				}
			}
		}
	}
}

func TestRoundTripSingle(t *testing.T) {
	tab := testTable(t, 4000)
	queries := testQueries(tab)
	for _, kind := range []core.OutlierIndexKind{core.OutlierGrid, core.OutlierRTree} {
		for _, compress := range []bool{false, true} {
			idx := buildIndex(t, tab, kind)
			blob, err := EncodeIndex(idx, Options{Compress: compress})
			if err != nil {
				t.Fatalf("kind=%v compress=%v: EncodeIndex: %v", kind, compress, err)
			}
			if err := Verify(blob); err != nil {
				t.Fatalf("kind=%v compress=%v: Verify: %v", kind, compress, err)
			}
			sn, err := OpenBytes(blob, OpenOptions{})
			if err != nil {
				t.Fatalf("kind=%v compress=%v: OpenBytes: %v", kind, compress, err)
			}
			got := sn.Index()
			if got == nil {
				t.Fatal("single snapshot returned no index")
			}
			if got.Len() != idx.Len() {
				t.Fatalf("Len %d != %d", got.Len(), idx.Len())
			}
			requireSameResults(t, idx, got, queries)
			if err := sn.PageErr(); err != nil {
				t.Fatalf("PageErr: %v", err)
			}
		}
	}
}

func TestRoundTripSharded(t *testing.T) {
	tab := testTable(t, 6000)
	queries := testQueries(tab)
	opt := core.DefaultOptions()
	opt.SoftFD.SampleCount = 2000
	sh, err := shard.Build(tab, opt, shard.DefaultOptions())
	if err != nil {
		t.Fatalf("shard.Build: %v", err)
	}
	for _, compress := range []bool{false, true} {
		blob, err := EncodeSharded(sh, Options{Compress: compress})
		if err != nil {
			t.Fatalf("EncodeSharded: %v", err)
		}
		if err := Verify(blob); err != nil {
			t.Fatalf("Verify: %v", err)
		}
		sn, err := OpenBytes(blob, OpenOptions{})
		if err != nil {
			t.Fatalf("OpenBytes: %v", err)
		}
		got := sn.Sharded()
		if got == nil {
			t.Fatal("sharded snapshot returned no sharded index")
		}
		if got.Len() != sh.Len() {
			t.Fatalf("Len %d != %d", got.Len(), sh.Len())
		}
		requireSameResults(t, sh, got, queries)
	}
}

// TestMappedMutationAndReencode proves a mapped index stays fully mutable
// (inserts, deletes, compaction) and that saving it back through the v2
// codec round-trips — the convert path in both directions.
func TestMappedMutationAndReencode(t *testing.T) {
	tab := testTable(t, 3000)
	idx := buildIndex(t, tab, core.OutlierGrid)
	for _, compress := range []bool{false, true} {
		blob, err := EncodeIndex(idx, Options{Compress: compress})
		if err != nil {
			t.Fatal(err)
		}
		sn, err := OpenBytes(blob, OpenOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got := sn.Index()

		rng := rand.New(rand.NewSource(11))
		var inserted [][]float64
		for i := 0; i < 50; i++ {
			row := tab.Row(rng.Intn(tab.Len()))
			nr := append([]float64(nil), row...)
			nr[0] += 0.5
			if err := got.Insert(nr); err != nil {
				t.Fatalf("Insert: %v", err)
			}
			inserted = append(inserted, nr)
		}
		for i := 0; i < 30; i++ {
			row := tab.Row(i * 7)
			if err := got.Delete(append([]float64(nil), row...)); err != nil {
				t.Fatalf("Delete: %v", err)
			}
		}
		// Save the mutated mapped index with the v2 codec and reload it.
		var buf bytes.Buffer
		if err := snapshot.Encode(&buf, got); err != nil {
			t.Fatalf("v2 Encode of mapped index: %v", err)
		}
		heap, err := snapshot.Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("v2 Decode: %v", err)
		}
		requireSameResults(t, heap, got, testQueries(tab))

		// Compact materializes the pages; the store must be gone after.
		got.Compact()
		if got.Primary() != nil && got.Primary().Mapped() {
			t.Fatal("primary still store-backed after Compact")
		}
		requireSameResults(t, heap, got, testQueries(tab))
		if err := sn.PageErr(); err != nil {
			t.Fatalf("PageErr: %v", err)
		}
	}
}

func TestOpenFileMapped(t *testing.T) {
	tab := testTable(t, 2000)
	idx := buildIndex(t, tab, core.OutlierGrid)
	blob, err := EncodeIndex(idx, Options{Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "idx.coax3")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	sn, err := OpenFile(path, OpenOptions{})
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	defer sn.Close()
	requireSameResults(t, idx, sn.Index(), testQueries(tab))
	if err := sn.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestColcodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cases := []func(r, d int) float64{
		func(r, d int) float64 { return float64(1_000_000 + r*3 + d) },        // dense ints
		func(r, d int) float64 { return rng.NormFloat64() * 1e6 },             // floats
		func(r, d int) float64 { return 42 },                                  // constant
		func(r, d int) float64 { return float64(rng.Int63())*2 - float64(1) }, // wide ints
		func(r, d int) float64 { return math.Copysign(0, -1) },                // -0.0 must survive
		func(r, d int) float64 { return rng.Float64() },                       // mantissa-dense
		func(r, d int) float64 { return float64(rng.Intn(2)) },                // 1-bit ints
	}
	for ci, gen := range cases {
		for _, rows := range []int{1, 2, 63, 64, 65, 500} {
			dims := 3
			page := make([]float64, rows*dims)
			for r := 0; r < rows; r++ {
				for d := 0; d < dims; d++ {
					page[r*dims+d] = gen(r, d)
				}
			}
			blob := encodePage(page, rows, dims)
			if len(blob) > 5+rows*dims*8 {
				t.Fatalf("case %d rows %d: blob %d bytes exceeds raw bound %d", ci, rows, len(blob), 5+rows*dims*8)
			}
			out := make([]float64, rows*dims)
			if err := decodePage(blob, out, rows, dims, -1); err != nil {
				t.Fatalf("case %d rows %d: decode: %v", ci, rows, err)
			}
			for i := range page {
				if math.Float64bits(page[i]) != math.Float64bits(out[i]) {
					t.Fatalf("case %d rows %d: value %d: %x != %x", ci, rows, i, math.Float64bits(page[i]), math.Float64bits(out[i]))
				}
			}
		}
	}
}

func TestCompressionShrinksIntHeavyData(t *testing.T) {
	tab := testTable(t, 20000)
	idx := buildIndex(t, tab, core.OutlierGrid)
	plain, err := EncodeIndex(idx, Options{})
	if err != nil {
		t.Fatal(err)
	}
	packed, err := EncodeIndex(idx, Options{Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(packed) >= len(plain) {
		t.Fatalf("compressed blob %d bytes ≥ plain %d", len(packed), len(plain))
	}
	t.Logf("plain %d bytes, compressed %d bytes (%.2fx)", len(plain), len(packed), float64(len(plain))/float64(len(packed)))
}

func TestPageLRUBounded(t *testing.T) {
	tab := testTable(t, 8000)
	idx := buildIndex(t, tab, core.OutlierGrid)
	blob, err := EncodeIndex(idx, Options{Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	// A tiny cache forces constant eviction; answers must stay identical.
	sn, err := OpenBytes(blob, OpenOptions{PageCacheBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResults(t, idx, sn.Index(), testQueries(tab))
	if err := sn.PageErr(); err != nil {
		t.Fatalf("PageErr: %v", err)
	}
}

// TestConcurrentReaders hammers one compressed snapshot from many
// goroutines through a deliberately tiny page cache, so decode races and
// evictions overlap in-flight scans. Run with -race.
func TestConcurrentReaders(t *testing.T) {
	tab := testTable(t, 5000)
	idx := buildIndex(t, tab, core.OutlierGrid)
	blob, err := EncodeIndex(idx, Options{Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	sn, err := OpenBytes(blob, OpenOptions{PageCacheBytes: 8192})
	if err != nil {
		t.Fatal(err)
	}
	queries := testQueries(tab)
	want := make([]int, len(queries))
	for i, q := range queries {
		want[i] = index.Count(idx, q)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				for i, q := range queries {
					if got := index.Count(sn.Index(), q); got != want[i] {
						t.Errorf("worker %d query %d: count %d, want %d", w, i, got, want[i])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if err := sn.PageErr(); err != nil {
		t.Fatalf("PageErr: %v", err)
	}
}

func TestCorruptionDetected(t *testing.T) {
	tab := testTable(t, 2000)
	idx := buildIndex(t, tab, core.OutlierGrid)
	for _, compress := range []bool{false, true} {
		blob, err := EncodeIndex(idx, Options{Compress: compress})
		if err != nil {
			t.Fatal(err)
		}
		// Truncations anywhere must error, never panic.
		for _, n := range []int{0, 4, 11, 15, 16, headerSize + 8, len(blob) / 2, len(blob) - 1} {
			if _, err := OpenBytes(blob[:n], OpenOptions{}); err == nil {
				t.Errorf("compress=%v: truncation to %d bytes opened", compress, n)
			}
		}
		// A flipped byte in the compressed data region must surface through
		// Verify (and PageErr once queried); plain-section flips fail open.
		bad := append([]byte(nil), blob...)
		bad[len(bad)-9] ^= 0xff
		if err := Verify(bad); err == nil {
			t.Errorf("compress=%v: Verify accepted corrupt tail", compress)
		}
	}
}

func TestVersionMismatch(t *testing.T) {
	if _, err := OpenBytes([]byte("COAXSNAPxxxx"), OpenOptions{}); !errors.Is(err, ErrVersion) {
		t.Fatalf("want ErrVersion, got %v", err)
	}
	if _, err := OpenBytes([]byte("NOTASNAPxxxx"), OpenOptions{}); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("want ErrBadMagic, got %v", err)
	}
	// A v2 file must be rejected by mmapsnap with ErrVersion, not mangled.
	tab := testTable(t, 500)
	idx := buildIndex(t, tab, core.OutlierGrid)
	var buf bytes.Buffer
	if err := snapshot.Encode(&buf, idx); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenBytes(buf.Bytes(), OpenOptions{}); !errors.Is(err, ErrVersion) {
		t.Fatalf("want ErrVersion for v2 file, got %v", err)
	}
}

func TestInspect(t *testing.T) {
	tab := testTable(t, 3000)
	idx := buildIndex(t, tab, core.OutlierGrid)
	blob, err := EncodeIndex(idx, Options{Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	st, err := Inspect(blob)
	if err != nil {
		t.Fatal(err)
	}
	if st.Version != Version || st.Bytes != uint64(len(blob)) {
		t.Fatalf("Inspect header: %+v", st)
	}
	var sawGrid bool
	for _, s := range st.Sections {
		if s.ID == secPrimary {
			sawGrid = true
			if !s.Compressed || s.Cells == 0 {
				t.Fatalf("primary section stat: %+v", s)
			}
			if s.DecodedBytes <= s.Len {
				t.Fatalf("expected decoded %d > on-disk %d for compressed grid", s.DecodedBytes, s.Len)
			}
		}
	}
	if !sawGrid {
		t.Fatal("no primary grid section in Inspect output")
	}
}
