//go:build !unix

package mmapsnap

import (
	"os"
)

// mapping on platforms without mmap support is an aligned heap buffer; the
// format still opens and serves identical answers, only without the
// page-cache-backed zero-copy benefit.
type mapping struct {
	data []byte
}

func (m *mapping) close() error {
	m.data = nil
	return nil
}

// OpenFile opens a version-3 snapshot by reading it into a 64-byte-aligned
// heap buffer — the graceful fallback for platforms without mmap.
func OpenFile(path string, opt OpenOptions) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	data, err := readAligned(f, st.Size())
	if err != nil {
		return nil, err
	}
	m := &mapping{data: data}
	sn, err := openBlob(m.data, opt, m, false)
	if err != nil {
		return nil, err
	}
	return sn, nil
}
