package mmapsnap

import (
	"math/rand"
	"testing"

	"github.com/coax-index/coax/internal/core"
	"github.com/coax-index/coax/internal/dataset"
	"github.com/coax-index/coax/internal/index"
	"github.com/coax-index/coax/internal/shard"
)

// fuzzSeedTable is a small correlated table whose snapshots exercise every
// v3 section kind: soft-FD models, a primary grid, and an outlier index.
func fuzzSeedTable() *dataset.Table {
	rng := rand.New(rand.NewSource(99))
	t := dataset.NewTable([]string{"x", "d", "u"})
	for i := 0; i < 400; i++ {
		x := rng.Float64() * 100
		d := 3*x + 7 + rng.NormFloat64()
		if rng.Float64() < 0.2 {
			d = rng.Float64() * 400
		}
		t.Append([]float64{x, d, rng.Float64() * 10})
	}
	return t
}

// FuzzMmapSnapDecode drives the v3 open path with arbitrary bytes.
// Truncated, corrupted, or misaligned inputs must produce typed errors —
// never a panic, an over-read past the blob, or an index that panics when
// queried. Seeds cover both container shapes × both outlier kinds ×
// compressed/plain, plus truncations and bit-flips, so the fuzzer starts
// inside the format rather than fighting the magic number.
func FuzzMmapSnapDecode(f *testing.F) {
	tab := fuzzSeedTable()
	opt := core.DefaultOptions()
	opt.SoftFD.SampleCount = 400

	var seeds [][]byte
	for _, kind := range []core.OutlierIndexKind{core.OutlierGrid, core.OutlierRTree} {
		o := opt
		o.OutlierKind = kind
		idx, err := core.Build(tab, o)
		if err != nil {
			f.Fatal(err)
		}
		for _, compress := range []bool{false, true} {
			blob, err := EncodeIndex(idx, Options{Compress: compress})
			if err != nil {
				f.Fatal(err)
			}
			seeds = append(seeds, blob)
		}
	}
	sharded, err := shard.Build(tab, opt, shard.Options{NumShards: 3, Workers: 1})
	if err != nil {
		f.Fatal(err)
	}
	blob, err := EncodeSharded(sharded, Options{Compress: true})
	if err != nil {
		f.Fatal(err)
	}
	seeds = append(seeds, blob)

	for _, blob := range seeds {
		f.Add(blob)
		f.Add(blob[:len(blob)/2])
		f.Add(blob[:len(blob)-1])
		for _, at := range []int{len(blob) / 3, len(blob) / 2, len(blob) - 9} {
			mut := append([]byte(nil), blob...)
			mut[at] ^= 0x40
			f.Add(mut)
		}
	}
	f.Add([]byte{})
	f.Add([]byte("COAXSNAP"))
	f.Add([]byte("COAXSNAP\x03\x00\x00\x00"))
	f.Add([]byte("not a snapshot at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		sn, err := OpenBytes(data, OpenOptions{PageCacheBytes: 1 << 16})
		if err == nil {
			if idx := sn.Index(); idx != nil {
				exerciseQueries(idx)
			}
			if sh := sn.Sharded(); sh != nil {
				exerciseQueries(sh)
			}
			// A lazily-surfaced page error is fine; a panic above is not.
			_ = sn.PageErr()
		}
		Inspect(data)
		Verify(data)
		IsSharded(data)
		PeekVersion(data)
	})
}

// exerciseQueries runs the probe paths of an opened index; an open that
// validated must answer (possibly with rows elided by a latched page
// error) without panicking.
func exerciseQueries(idx index.Interface) {
	dims := idx.Dims()
	index.Count(idx, index.Full(dims))
	r := index.Full(dims)
	for d := 0; d < dims; d++ {
		r.Min[d], r.Max[d] = -1, 1
	}
	index.Count(idx, r)
	index.Count(idx, index.Point(make([]float64, dims)))
}
