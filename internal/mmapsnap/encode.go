package mmapsnap

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"github.com/coax-index/coax/internal/binio"
	"github.com/coax-index/coax/internal/core"
	"github.com/coax-index/coax/internal/gridfile"
	"github.com/coax-index/coax/internal/rtree"
	"github.com/coax-index/coax/internal/shard"
)

// Options controls a v3 encode.
type Options struct {
	// Compress enables per-page columnar compression of grid data regions.
	// Compressed pages decode lazily through a bounded LRU on open;
	// uncompressed ones are served zero-copy from the mapping.
	Compress bool
}

type rawSection struct {
	id      string
	flags   uint32
	payload []byte
}

// assemble frames sections into one blob: header, TOC, then payloads with
// every page-structured section on a 64-byte boundary.
func assemble(sections []rawSection) []byte {
	cursor := align64(headerSize + len(sections)*tocEntrySize)
	offs := make([]int, len(sections))
	for i, s := range sections {
		if s.flags&flagPages != 0 {
			cursor = align64(cursor)
		}
		offs[i] = cursor
		cursor += len(s.payload)
	}
	out := make([]byte, 0, cursor)
	out = append(out, magic[:]...)
	out = binary.LittleEndian.AppendUint32(out, Version)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(sections)))
	for i, s := range sections {
		out = append(out, s.id[:4]...)
		out = binary.LittleEndian.AppendUint32(out, s.flags)
		out = binary.LittleEndian.AppendUint64(out, uint64(offs[i]))
		out = binary.LittleEndian.AppendUint64(out, uint64(len(s.payload)))
		out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(s.payload, castagnoli))
		out = binary.LittleEndian.AppendUint32(out, 0)
	}
	for i, s := range sections {
		for len(out) < offs[i] {
			out = append(out, 0)
		}
		out = append(out, s.payload...)
	}
	return out
}

func binioSection(id string, emit func(*binio.Writer)) rawSection {
	w := binio.NewWriter()
	emit(w)
	return rawSection{id: id, payload: w.Bytes()}
}

// EncodeIndex lays a single COAX index out as a version-3 blob. Safe to
// call under a shard read lock: it only reads through the index's
// accessors (cell pages are streamed via CellPages, never materialized or
// re-sorted).
func EncodeIndex(idx *core.COAX, opt Options) ([]byte, error) {
	sections := []rawSection{
		binioSection(secMeta, idx.EncodeMeta),
		binioSection(secSoftFD, idx.EncodeFD),
	}
	if idx.HasPrimary() {
		sections = append(sections, rawSection{
			id:      secPrimary,
			flags:   flagPages,
			payload: encodeGridSection(idx.Primary(), opt.Compress),
		})
	}
	switch o := idx.Outliers().(type) {
	case nil:
	case *gridfile.GridFile:
		sections = append(sections, rawSection{
			id:      secOutlGrid,
			flags:   flagPages,
			payload: encodeGridSection(o, opt.Compress),
		})
	case *rtree.RTree:
		sections = append(sections, binioSection(secOutlRTree, o.Encode))
	default:
		return nil, fmt.Errorf("mmapsnap: outlier index %T has no v3 codec", idx.Outliers())
	}
	sections = append(sections, binioSection(secLifecycle, idx.EncodeLifecycleScalars))
	if idx.HasColumnNames() {
		sections = append(sections, binioSection(secColumns, idx.EncodeColumns))
	}
	return assemble(sections), nil
}

// EncodeSharded lays a sharded index out as a version-3 blob: a "shmt"
// layout section (same payload as format v2), then one page-structured
// section per shard holding a complete nested v3 blob. Sub-blob offsets
// are relative to the sub-blob, and each lands on a 64-byte boundary of
// the parent, so one mapping serves every shard by subslicing. Each shard
// encodes under its read lock, like the v2 encoder.
func EncodeSharded(s *shard.Sharded, opt Options) ([]byte, error) {
	k := s.NumShards()
	layout := binio.NewWriter()
	layout.Int(k)
	layout.Int(int(s.Partition()))
	layout.Int(s.RangeColumn())
	layout.Float64s(s.Cuts())
	layout.Int(s.Dims())
	sections := []rawSection{{id: secShardMeta, payload: layout.Bytes()}}

	for i := 0; i < k; i++ {
		var blob []byte
		err := s.WithShard(i, func(idx *core.COAX) error {
			var err error
			blob, err = EncodeIndex(idx, opt)
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("mmapsnap: encoding shard %d: %w", i, err)
		}
		sections = append(sections, rawSection{id: shardSection(i), flags: flagPages, payload: blob})
	}
	return assemble(sections), nil
}
