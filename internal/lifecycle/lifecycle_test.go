package lifecycle

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/coax-index/coax/internal/binio"
)

func TestValidateRow(t *testing.T) {
	cases := []struct {
		name string
		dims int
		row  []float64
		ok   bool
	}{
		{"valid", 3, []float64{1, 2, 3}, true},
		{"empty valid", 0, nil, true},
		{"short", 3, []float64{1, 2}, false},
		{"long", 2, []float64{1, 2, 3}, false},
		{"nan", 2, []float64{1, math.NaN()}, false},
		{"+inf", 2, []float64{math.Inf(1), 0}, false},
		{"-inf", 2, []float64{0, math.Inf(-1)}, false},
		{"nil short", 1, nil, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateRow(tc.dims, tc.row)
			if (err == nil) != tc.ok {
				t.Fatalf("ValidateRow(%d, %v) = %v, want ok=%v", tc.dims, tc.row, err, tc.ok)
			}
			if err != nil {
				var re *RowError
				if !errors.As(err, &re) {
					t.Fatalf("error %v is not a *RowError", err)
				}
			}
		})
	}
}

func TestStaleRules(t *testing.T) {
	th := Thresholds{
		MaxOutlierRatio:   0.2,
		MinOutlierGain:    0.05,
		MaxTombstoneRatio: 0.3,
		MaxResidualDrift:  1.0,
		MinMutations:      10,
	}
	base := Stats{LiveRows: 1000, StoredRows: 1000, Inserts: 100}

	t.Run("healthy", func(t *testing.T) {
		s := base
		s.OutlierRatio = 0.05
		if stale, _ := s.Stale(th); stale {
			t.Fatal("healthy index marked stale")
		}
	})
	t.Run("too few mutations", func(t *testing.T) {
		s := base
		s.Inserts = 5
		s.OutlierRatio = 0.9
		if stale, _ := s.Stale(th); stale {
			t.Fatal("stale before MinMutations")
		}
	})
	t.Run("outlier ratio", func(t *testing.T) {
		s := base
		s.OutlierRatio = 0.35
		stale, reasons := s.Stale(th)
		if !stale || len(reasons) != 1 {
			t.Fatalf("stale=%v reasons=%v", stale, reasons)
		}
	})
	t.Run("no rebuild loop on high base ratio", func(t *testing.T) {
		// Built at 0.34, now 0.35: above the threshold but barely grown —
		// rebuilding would not help, so it must not be stale.
		s := base
		s.OutlierRatio = 0.35
		s.BaseOutlierRatio = 0.34
		if stale, _ := s.Stale(th); stale {
			t.Fatal("marked stale with no outlier gain over build")
		}
	})
	t.Run("tombstones", func(t *testing.T) {
		s := base
		s.TombstoneRatio = 0.5
		if stale, _ := s.Stale(th); !stale {
			t.Fatal("tombstone-heavy index not stale")
		}
	})
	t.Run("residual drift", func(t *testing.T) {
		s := base
		s.Drift = []GroupDrift{{Predictor: 0, Dependent: 1, MarginWidth: 1, MeanAbsResidual: 2.5, Samples: 50}}
		stale, reasons := s.Stale(th)
		if !stale {
			t.Fatalf("drifted index not stale (reasons %v)", reasons)
		}
	})
	t.Run("zero thresholds never stale", func(t *testing.T) {
		s := base
		s.OutlierRatio = 0.99
		s.TombstoneRatio = 0.99
		if stale, _ := s.Stale(Thresholds{}); stale {
			t.Fatal("zero-value thresholds marked something stale")
		}
	})
}

func TestTrackerSnapshotAndRoundTrip(t *testing.T) {
	tr := NewTracker()
	tr.Track(1, 0, 2.0)
	tr.Track(3, 2, 4.0)
	tr.Track(1, 0, 99) // duplicate registration is a no-op

	tr.ObserveInsert(false)
	tr.ObserveInsert(true)
	tr.ObserveResidual(1, 1.0)
	tr.ObserveResidual(1, 3.0)
	tr.ObserveResidual(3, 8.0)
	tr.ObserveResidual(7, 5.0) // untracked column is ignored
	tr.ObserveDelete()
	tr.ObserveUpdate()

	var s Stats
	tr.Snapshot(&s)
	if s.Inserts != 2 || s.Deletes != 1 || s.Updates != 1 || s.InsertOutliers != 1 {
		t.Fatalf("counters: %+v", s)
	}
	if tr.Mutations() != 4 {
		t.Fatalf("mutations = %d, want 4", tr.Mutations())
	}
	want := []GroupDrift{
		{Predictor: 0, Dependent: 1, MarginWidth: 2.0, MeanAbsResidual: 2.0, Samples: 2},
		{Predictor: 2, Dependent: 3, MarginWidth: 4.0, MeanAbsResidual: 8.0, Samples: 1},
	}
	if !reflect.DeepEqual(s.Drift, want) {
		t.Fatalf("drift = %+v, want %+v", s.Drift, want)
	}
	if got := s.Drift[0].Drift(); got != 1.0 {
		t.Fatalf("drift[0].Drift() = %v, want 1", got)
	}
	if got := s.MaxDrift(); got != 2.0 {
		t.Fatalf("MaxDrift = %v, want 2", got)
	}

	// Codec round trip.
	w := binio.NewWriter()
	tr.Encode(w)
	back, err := DecodeTracker(binio.NewReader(w.Bytes()), 8)
	if err != nil {
		t.Fatalf("DecodeTracker: %v", err)
	}
	var s2 Stats
	back.Snapshot(&s2)
	s.LiveRows = 0 // Snapshot only fills counters and drift
	if !reflect.DeepEqual(s, s2) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", s2, s)
	}

	// Corrupt payloads error rather than panic.
	if _, err := DecodeTracker(binio.NewReader(w.Bytes()[:10]), 8); err == nil {
		t.Fatal("truncated tracker decoded")
	}
	if _, err := DecodeTracker(binio.NewReader(w.Bytes()), 2); err == nil {
		t.Fatal("column 3 accepted with dims=2")
	}
}

func TestMerge(t *testing.T) {
	per := []Stats{
		{
			LiveRows: 100, StoredRows: 110, Tombstones: 10, OutlierRows: 10,
			Inserts: 5, BaseOutlierRatio: 0.05, Epoch: 1,
			Drift: []GroupDrift{{Predictor: 0, Dependent: 1, MarginWidth: 2, MeanAbsResidual: 1, Samples: 10}},
		},
		{
			LiveRows: 300, StoredRows: 300, OutlierRows: 30,
			Deletes: 7, BaseOutlierRatio: 0.09, Epoch: 2, Rebuilding: true,
			Drift: []GroupDrift{{Predictor: 0, Dependent: 1, MarginWidth: 2, MeanAbsResidual: 3, Samples: 30}},
		},
	}
	m := Merge(per)
	if m.LiveRows != 400 || m.StoredRows != 410 || m.Tombstones != 10 {
		t.Fatalf("row sums: %+v", m)
	}
	if m.Epoch != 3 || !m.Rebuilding || m.Inserts != 5 || m.Deletes != 7 {
		t.Fatalf("counters: %+v", m)
	}
	if got, want := m.OutlierRatio, 40.0/400; math.Abs(got-want) > 1e-12 {
		t.Fatalf("outlier ratio %v, want %v", got, want)
	}
	if got, want := m.TombstoneRatio, 10.0/410; math.Abs(got-want) > 1e-12 {
		t.Fatalf("tombstone ratio %v, want %v", got, want)
	}
	if got, want := m.BaseOutlierRatio, (0.05*100+0.09*300)/400; math.Abs(got-want) > 1e-12 {
		t.Fatalf("base ratio %v, want %v", got, want)
	}
	if len(m.Drift) != 1 {
		t.Fatalf("drift entries: %+v", m.Drift)
	}
	d := m.Drift[0]
	if d.Samples != 40 || math.Abs(d.MeanAbsResidual-(1*10+3*30)/40.0) > 1e-12 {
		t.Fatalf("merged drift: %+v", d)
	}
}

func TestDeltaLogReplay(t *testing.T) {
	l := NewDeltaLog(2)
	l.Append(OpInsert, []float64{1, 2})
	l.Append(OpDelete, []float64{3, 4})
	l.Append(OpInsert, []float64{5, 6})
	if l.Len() != 3 {
		t.Fatalf("len = %d", l.Len())
	}
	var got []string
	err := l.Replay(
		func(row []float64) error { got = append(got, fmt.Sprintf("i%v", row)); return nil },
		func(row []float64) error { got = append(got, fmt.Sprintf("d%v", row)); return nil },
	)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"i[1 2]", "d[3 4]", "i[5 6]"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replay order %v, want %v", got, want)
	}

	// A failing op aborts with position info.
	boom := errors.New("boom")
	err = l.Replay(
		func([]float64) error { return nil },
		func([]float64) error { return boom },
	)
	if !errors.Is(err, boom) {
		t.Fatalf("replay error %v, want wrapped boom", err)
	}
}

// fakeRebuildable counts rebuilds under a lock so the compactor can be
// exercised concurrently.
type fakeRebuildable struct {
	mu      sync.Mutex
	stale   []int
	rebuilt []int
	fail    map[int]error
}

func (f *fakeRebuildable) StaleShards(Thresholds) []int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]int(nil), f.stale...)
}

func (f *fakeRebuildable) RebuildShard(i int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.fail[i]; err != nil {
		return err
	}
	f.rebuilt = append(f.rebuilt, i)
	// Rebuilding fixes staleness.
	var still []int
	for _, s := range f.stale {
		if s != i {
			still = append(still, s)
		}
	}
	f.stale = still
	return nil
}

func TestCompactorSweepAndKick(t *testing.T) {
	f := &fakeRebuildable{stale: []int{0, 2, 3}, fail: map[int]error{2: errors.New("no")}}
	c := NewCompactor(f, DefaultThresholds(), time.Hour)

	res := c.Sweep()
	if !reflect.DeepEqual(res.Stale, []int{0, 2, 3}) {
		t.Fatalf("stale %v", res.Stale)
	}
	if !reflect.DeepEqual(res.Rebuilt, []int{0, 3}) || len(res.Errs) != 1 {
		t.Fatalf("rebuilt %v errs %v", res.Rebuilt, res.Errs)
	}
	if last := c.Last(); last.At.IsZero() || !reflect.DeepEqual(last.Rebuilt, res.Rebuilt) {
		t.Fatalf("Last() = %+v", last)
	}

	// Kick without a running loop sweeps synchronously.
	res = c.Kick()
	if !reflect.DeepEqual(res.Stale, []int{2}) || len(res.Rebuilt) != 0 {
		t.Fatalf("second sweep: %+v", res)
	}

	// Start/Stop with a long interval: Kick routes through the loop.
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	delete(f.fail, 2)
	res = c.Kick()
	if !reflect.DeepEqual(res.Rebuilt, []int{2}) {
		t.Fatalf("kicked sweep: %+v", res)
	}
	c.Stop()

	if err := NewCompactor(f, DefaultThresholds(), 0).Start(); err == nil {
		t.Fatal("Start accepted a zero interval")
	}
}
