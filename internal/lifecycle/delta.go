package lifecycle

import "fmt"

// Op is one mutation kind recorded in a DeltaLog. Updates are logged as a
// delete of the old row followed by an insert of the new one, so replay
// needs only two operations.
type Op uint8

const (
	OpInsert Op = iota
	OpDelete
)

func (o Op) String() string {
	switch o {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// DeltaLog records the mutations that land on the serving epoch while a
// replacement epoch is being rebuilt off the query path. Before the swap,
// the log is replayed into the new epoch so it catches up with everything
// the old one absorbed; the rows a query can match are therefore identical
// across the swap. A DeltaLog is not synchronised — internal/shard appends
// under the same lock that serialises the shard's mutations.
type DeltaLog struct {
	ops  []Op
	rows []float64 // flattened row-major payload, dims values per op
	dims int
}

// NewDeltaLog creates an empty log for rows of the given dimensionality.
func NewDeltaLog(dims int) *DeltaLog { return &DeltaLog{dims: dims} }

// Append records one mutation; the row is copied.
func (l *DeltaLog) Append(op Op, row []float64) {
	l.ops = append(l.ops, op)
	l.rows = append(l.rows, row...)
}

// Len reports the number of recorded mutations.
func (l *DeltaLog) Len() int { return len(l.ops) }

// Replay applies every recorded mutation in order. It stops at the first
// error, which aborts the epoch swap (the old epoch keeps serving).
func (l *DeltaLog) Replay(insert, del func(row []float64) error) error {
	for i, op := range l.ops {
		row := l.rows[i*l.dims : (i+1)*l.dims]
		var err error
		switch op {
		case OpInsert:
			err = insert(row)
		case OpDelete:
			err = del(row)
		default:
			err = fmt.Errorf("lifecycle: unknown delta op %d", op)
		}
		if err != nil {
			return fmt.Errorf("lifecycle: replaying delta %s %d/%d: %w", op, i+1, len(l.ops), err)
		}
	}
	return nil
}
