package lifecycle

import (
	"fmt"

	"github.com/coax-index/coax/internal/binio"
)

// residAccum accumulates |d − ψ̂(x)| for one dependent column.
type residAccum struct {
	predictor int
	margin    float64 // (EpsLB+EpsUB)/2 at build time
	sumAbs    float64
	count     int64
}

// Tracker holds one index's mutation counters and per-dependency residual
// accumulators. It is not itself synchronised: core.COAX owns one and is
// guarded by whatever guards the index (the per-shard RWMutex in the
// serving layer). A Tracker persists inside the snapshot's lifecycle
// section so a loaded index resumes mid-lifecycle.
type Tracker struct {
	Inserts        int64
	Deletes        int64
	Updates        int64
	InsertOutliers int64
	cols           []int // dependent columns in registration order
	resid          map[int]*residAccum
}

// NewTracker creates an empty tracker; register dependencies with Track.
func NewTracker() *Tracker {
	return &Tracker{resid: make(map[int]*residAccum)}
}

// Track registers one dependency so inserted rows can be scored against it.
// Registration order fixes the reporting order; re-registering a column is
// a no-op.
func (t *Tracker) Track(dependent, predictor int, marginWidth float64) {
	if _, dup := t.resid[dependent]; dup {
		return
	}
	t.cols = append(t.cols, dependent)
	t.resid[dependent] = &residAccum{predictor: predictor, margin: marginWidth}
}

// ObserveInsert records one insert and whether it landed in the outlier
// partition.
func (t *Tracker) ObserveInsert(outlier bool) {
	t.Inserts++
	if outlier {
		t.InsertOutliers++
	}
}

// ObserveResidual records one inserted row's absolute residual against the
// model predicting column dependent.
func (t *Tracker) ObserveResidual(dependent int, absResid float64) {
	a := t.resid[dependent]
	if a == nil {
		return
	}
	a.sumAbs += absResid
	a.count++
}

// ObserveDelete records one delete.
func (t *Tracker) ObserveDelete() { t.Deletes++ }

// ObserveUpdate records one update (counted once, not as delete+insert).
func (t *Tracker) ObserveUpdate() { t.Updates++ }

// Mutations is the total mutation count since the tracker was created.
func (t *Tracker) Mutations() int64 { return t.Inserts + t.Deletes + t.Updates }

// Snapshot fills the mutation counters and drift entries of s. Dependent
// columns report in registration order.
func (t *Tracker) Snapshot(s *Stats) {
	s.Inserts = t.Inserts
	s.Deletes = t.Deletes
	s.Updates = t.Updates
	s.InsertOutliers = t.InsertOutliers
	for _, col := range t.cols {
		a := t.resid[col]
		g := GroupDrift{
			Predictor:   a.predictor,
			Dependent:   col,
			MarginWidth: a.margin,
			Samples:     a.count,
		}
		if a.count > 0 {
			g.MeanAbsResidual = a.sumAbs / float64(a.count)
		}
		s.Drift = append(s.Drift, g)
	}
}

// Encode appends the tracker state to w (part of the snapshot's lifecycle
// section).
func (t *Tracker) Encode(w *binio.Writer) {
	w.Int64(t.Inserts)
	w.Int64(t.Deletes)
	w.Int64(t.Updates)
	w.Int64(t.InsertOutliers)
	w.Uint64(uint64(len(t.cols)))
	for _, col := range t.cols {
		a := t.resid[col]
		w.Int(col)
		w.Int(a.predictor)
		w.Float64(a.margin)
		w.Float64(a.sumAbs)
		w.Int64(a.count)
	}
}

// DecodeTracker reads a tracker written by Encode; dims bounds the column
// ordinals.
func DecodeTracker(r *binio.Reader, dims int) (*Tracker, error) {
	t := NewTracker()
	t.Inserts = r.Int64()
	t.Deletes = r.Int64()
	t.Updates = r.Int64()
	t.InsertOutliers = r.Int64()
	n := r.Uint64()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if n > uint64(dims) {
		return nil, fmt.Errorf("lifecycle: %d residual accumulators for %d dims", n, dims)
	}
	for i := uint64(0); i < n; i++ {
		col := r.Int()
		pred := r.Int()
		margin := r.Float64()
		sumAbs := r.Float64()
		count := r.Int64()
		if err := r.Err(); err != nil {
			return nil, err
		}
		if col < 0 || col >= dims || pred < 0 || pred >= dims {
			return nil, fmt.Errorf("lifecycle: residual accumulator columns (%d←%d) out of range [0,%d)", col, pred, dims)
		}
		if count < 0 || sumAbs < 0 || margin < 0 {
			return nil, fmt.Errorf("lifecycle: negative residual accumulator for column %d", col)
		}
		if _, dup := t.resid[col]; dup {
			return nil, fmt.Errorf("lifecycle: column %d has two residual accumulators", col)
		}
		t.Track(col, pred, margin)
		a := t.resid[col]
		a.sumAbs = sumAbs
		a.count = count
	}
	if t.Inserts < 0 || t.Deletes < 0 || t.Updates < 0 || t.InsertOutliers < 0 {
		return nil, fmt.Errorf("lifecycle: negative mutation counters")
	}
	return t, nil
}
