// Package lifecycle is the unified mutation/maintenance subsystem shared by
// every mutable layer of the repository. COAX's query speed rests on the
// outlier set staying small relative to the inliers (the paper's memory rule
// and the Figure 6 ablations), but a sustained write workload drifts the
// data away from the models learned at build time and silently degenerates
// the index toward an outlier scan. This package owns everything the layers
// need to change over time without degenerating:
//
//   - ValidateRow, the single row-validation path used by core, shard, and
//     the HTTP server (previously copy-pasted per layer);
//   - Tracker, the live mutation counters — inserts, deletes, updates,
//     outlier-bound inserts, per-dependent-column model residuals — from
//     which drift is computed;
//   - Stats and Thresholds, the health snapshot and the rules that mark an
//     index "stale" and due for a rebuild;
//   - DeltaLog, the mutation log replayed into a freshly rebuilt epoch
//     before it is atomically swapped in (internal/shard);
//   - Compactor, the background goroutine that polls for stale shards and
//     rebuilds them off the query path.
package lifecycle

import (
	"fmt"
	"math"
	"strings"
)

// RowError describes an invalid row; every mutation path returns it so
// callers can distinguish bad input from index failures.
type RowError struct {
	Reason string
}

func (e *RowError) Error() string { return "lifecycle: invalid row: " + e.Reason }

// ValidateRow is the shared row-validation path: the row must have exactly
// dims values, every one of them finite. core.COAX, shard.Sharded, and
// cmd/coaxserve all route mutations through this one check.
func ValidateRow(dims int, row []float64) error {
	if len(row) != dims {
		return &RowError{Reason: fmt.Sprintf("has %d values, index has %d dims", len(row), dims)}
	}
	for i, v := range row {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return &RowError{Reason: fmt.Sprintf("value %d is not finite", i)}
		}
	}
	return nil
}

// RowsEqual is the mutation layer's exact-match contract: two rows are the
// same row iff every dimension compares equal with ==. Validated rows hold
// no NaNs, so bit-for-bit inserted values always match themselves. Every
// structure's Delete (grid-file pages and the R-tree) matches through this
// one helper so the semantics cannot drift between them.
func RowsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Thresholds configures when an index counts as stale. The zero value never
// marks anything stale; start from DefaultThresholds.
type Thresholds struct {
	// MaxOutlierRatio is the outlier fraction (outlier rows / live rows)
	// beyond which the index is stale — the paper's memory rule presumes a
	// small outlier set, so a growing ratio is the primary drift signal.
	MaxOutlierRatio float64 `json:"max_outlier_ratio"`
	// MinOutlierGain guards against rebuild loops on data whose best build
	// already exceeds MaxOutlierRatio: the ratio must also have grown by at
	// least this much over the ratio measured at build time.
	MinOutlierGain float64 `json:"min_outlier_gain"`
	// MaxTombstoneRatio is the dead fraction (tombstoned rows / stored
	// rows) beyond which queries waste too much time skipping corpses.
	MaxTombstoneRatio float64 `json:"max_tombstone_ratio"`
	// MaxResidualDrift bounds the mean absolute model residual of inserted
	// rows, normalised by each model's margin width; values above 1 mean
	// the typical new row lands outside the learned band.
	MaxResidualDrift float64 `json:"max_residual_drift"`
	// MinMutations is the number of mutations that must have landed since
	// the last build before staleness is evaluated at all, so a handful of
	// unlucky inserts cannot trigger a rebuild of a huge index.
	MinMutations int64 `json:"min_mutations"`
}

// DefaultThresholds returns the staleness rules used by the serving layer.
func DefaultThresholds() Thresholds {
	return Thresholds{
		MaxOutlierRatio:   0.20,
		MinOutlierGain:    0.05,
		MaxTombstoneRatio: 0.30,
		MaxResidualDrift:  1.0,
		MinMutations:      256,
	}
}

// GroupDrift reports how far inserted rows have drifted from one learned
// dependency since the last build.
type GroupDrift struct {
	Predictor int `json:"predictor"`
	Dependent int `json:"dependent"`
	// MarginWidth is (EpsLB+EpsUB)/2, the model's learned half-band.
	MarginWidth float64 `json:"margin_width"`
	// MeanAbsResidual is the mean |d − ψ̂(x)| over rows inserted since the
	// last build.
	MeanAbsResidual float64 `json:"mean_abs_residual"`
	// Samples counts the inserts the mean is computed over.
	Samples int64 `json:"samples"`
}

// Drift is MeanAbsResidual normalised by the margin width; > 1 means the
// typical inserted row violates the model.
func (g GroupDrift) Drift() float64 {
	if g.MarginWidth <= 0 || g.Samples == 0 {
		return 0
	}
	return g.MeanAbsResidual / g.MarginWidth
}

// Stats is the lifecycle health snapshot of one index (or, aggregated, of a
// sharded engine).
type Stats struct {
	// LiveRows counts rows a query can match; StoredRows additionally
	// counts tombstoned rows still occupying pages.
	LiveRows    int `json:"live_rows"`
	StoredRows  int `json:"stored_rows"`
	Tombstones  int `json:"tombstones"`
	PrimaryRows int `json:"primary_rows"`
	OutlierRows int `json:"outlier_rows"`

	// Mutation counters since the last build/rebuild.
	Inserts        int64 `json:"inserts"`
	Deletes        int64 `json:"deletes"`
	Updates        int64 `json:"updates"`
	InsertOutliers int64 `json:"insert_outliers"`

	// OutlierRatio is OutlierRows/LiveRows; BaseOutlierRatio is the same
	// ratio measured when the index was built.
	OutlierRatio     float64 `json:"outlier_ratio"`
	BaseOutlierRatio float64 `json:"base_outlier_ratio"`
	// TombstoneRatio is Tombstones/StoredRows.
	TombstoneRatio float64 `json:"tombstone_ratio"`

	// Drift lists per-dependency residual drift of inserted rows.
	Drift []GroupDrift `json:"drift,omitempty"`

	// Epoch counts rebuilds this index has been through (aggregated: the
	// sum over shards); Rebuilding reports an in-flight epoch swap.
	Epoch      uint64 `json:"epoch"`
	Rebuilding bool   `json:"rebuilding"`
}

// Mutations is the total mutation count since the last build.
func (s Stats) Mutations() int64 { return s.Inserts + s.Deletes + s.Updates }

// MaxDrift returns the largest per-dependency drift.
func (s Stats) MaxDrift() float64 {
	m := 0.0
	for _, g := range s.Drift {
		if d := g.Drift(); d > m {
			m = d
		}
	}
	return m
}

// Stale evaluates s against th and, when stale, lists the human-readable
// reasons — the operator-facing explanation surfaced by /stats and logged
// by the compactor.
func (s Stats) Stale(th Thresholds) (bool, []string) {
	if s.Mutations() < th.MinMutations {
		return false, nil
	}
	var reasons []string
	if th.MaxOutlierRatio > 0 &&
		s.OutlierRatio > th.MaxOutlierRatio &&
		s.OutlierRatio > s.BaseOutlierRatio+th.MinOutlierGain {
		reasons = append(reasons, fmt.Sprintf("outlier ratio %.3f exceeds %.3f (built at %.3f)",
			s.OutlierRatio, th.MaxOutlierRatio, s.BaseOutlierRatio))
	}
	if th.MaxTombstoneRatio > 0 && s.TombstoneRatio > th.MaxTombstoneRatio {
		reasons = append(reasons, fmt.Sprintf("tombstone ratio %.3f exceeds %.3f",
			s.TombstoneRatio, th.MaxTombstoneRatio))
	}
	if th.MaxResidualDrift > 0 {
		for _, g := range s.Drift {
			if d := g.Drift(); d > th.MaxResidualDrift {
				reasons = append(reasons, fmt.Sprintf("column %d residual drift %.2f exceeds %.2f",
					g.Dependent, d, th.MaxResidualDrift))
			}
		}
	}
	return len(reasons) > 0, reasons
}

// StaleReason joins the staleness reasons for logs.
func StaleReason(reasons []string) string { return strings.Join(reasons, "; ") }

// Merge aggregates per-shard stats into one engine-wide snapshot: counts
// and epochs sum, ratios are recomputed over the summed counts, drift
// entries are merged by (predictor, dependent) column pair weighted by
// sample count, and Rebuilding is true when any shard is mid-swap.
func Merge(per []Stats) Stats {
	var out Stats
	type key struct{ p, d int }
	drift := make(map[key]*GroupDrift)
	var driftOrder []key
	for _, s := range per {
		out.LiveRows += s.LiveRows
		out.StoredRows += s.StoredRows
		out.Tombstones += s.Tombstones
		out.PrimaryRows += s.PrimaryRows
		out.OutlierRows += s.OutlierRows
		out.Inserts += s.Inserts
		out.Deletes += s.Deletes
		out.Updates += s.Updates
		out.InsertOutliers += s.InsertOutliers
		out.Epoch += s.Epoch
		out.Rebuilding = out.Rebuilding || s.Rebuilding
		for _, g := range s.Drift {
			k := key{g.Predictor, g.Dependent}
			agg := drift[k]
			if agg == nil {
				cp := g
				drift[k] = &cp
				driftOrder = append(driftOrder, k)
				continue
			}
			tot := agg.Samples + g.Samples
			if tot > 0 {
				agg.MeanAbsResidual = (agg.MeanAbsResidual*float64(agg.Samples) +
					g.MeanAbsResidual*float64(g.Samples)) / float64(tot)
				agg.MarginWidth = (agg.MarginWidth*float64(agg.Samples) +
					g.MarginWidth*float64(g.Samples)) / float64(tot)
			}
			agg.Samples = tot
		}
	}
	for _, k := range driftOrder {
		out.Drift = append(out.Drift, *drift[k])
	}
	// Base ratio aggregates as the live-row-weighted mean of the per-shard
	// build-time ratios.
	var baseNum, baseDen float64
	for _, s := range per {
		baseNum += s.BaseOutlierRatio * float64(s.LiveRows)
		baseDen += float64(s.LiveRows)
	}
	if baseDen > 0 {
		out.BaseOutlierRatio = baseNum / baseDen
	}
	if out.LiveRows > 0 {
		out.OutlierRatio = float64(out.OutlierRows) / float64(out.LiveRows)
	}
	if out.StoredRows > 0 {
		out.TombstoneRatio = float64(out.Tombstones) / float64(out.StoredRows)
	}
	return out
}
