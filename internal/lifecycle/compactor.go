package lifecycle

import (
	"fmt"
	"sync"
	"time"

	"github.com/coax-index/coax/internal/obs"
)

// Rebuildable is the surface the background compactor drives. It is
// satisfied by shard.Sharded: shards rebuild independently, so only one
// shard's writes ever block (briefly, during the epoch swap) while every
// other shard keeps serving untouched.
type Rebuildable interface {
	// StaleShards lists the shard ordinals currently stale under th.
	StaleShards(th Thresholds) []int
	// RebuildShard rebuilds one shard RCU-style and swaps the new epoch in.
	RebuildShard(i int) error
}

// Compactor polls a Rebuildable for stale shards and rebuilds them off the
// query path. Start launches the background goroutine; Kick forces an
// immediate sweep (the /compact endpoint); Stop shuts the goroutine down
// and waits for an in-flight sweep to finish.
type Compactor struct {
	target   Rebuildable
	th       Thresholds
	interval time.Duration

	kick chan chan SweepResult
	stop chan struct{}
	wg   sync.WaitGroup

	// sweepMu serialises Sweep itself: a Kick that falls back to a
	// synchronous sweep (loop busy or not running) must not overlap an
	// in-flight periodic sweep, or the two would race RebuildShard on the
	// same shards and overwrite each other's result.
	sweepMu sync.Mutex

	mu   sync.Mutex
	last SweepResult
}

// SweepResult summarises one compactor pass.
type SweepResult struct {
	// When the sweep finished.
	At time.Time `json:"at"`
	// Stale lists the shards found stale; Rebuilt the ones successfully
	// rebuilt this pass.
	Stale   []int `json:"stale,omitempty"`
	Rebuilt []int `json:"rebuilt,omitempty"`
	// Errs holds per-shard rebuild failures as strings (JSON-friendly).
	Errs []string `json:"errors,omitempty"`
}

// NewCompactor creates a compactor over target. interval bounds how often
// the background loop polls; it must be positive for Start (Kick works
// regardless).
func NewCompactor(target Rebuildable, th Thresholds, interval time.Duration) *Compactor {
	return &Compactor{
		target:   target,
		th:       th,
		interval: interval,
		kick:     make(chan chan SweepResult),
		stop:     make(chan struct{}),
	}
}

// Start launches the background polling loop.
func (c *Compactor) Start() error {
	if c.interval <= 0 {
		return fmt.Errorf("lifecycle: compactor interval must be positive, got %v", c.interval)
	}
	c.wg.Add(1)
	go c.loop()
	return nil
}

// Stop terminates the background loop and waits for it to exit. Safe to
// call once whether or not Start was called.
func (c *Compactor) Stop() {
	close(c.stop)
	c.wg.Wait()
}

// Kick runs one sweep immediately. When the background loop is idle the
// sweep executes on it; otherwise it runs on the calling goroutine, where
// Sweep's own serialisation makes it wait out any in-flight periodic
// sweep before re-evaluating staleness.
func (c *Compactor) Kick() SweepResult {
	reply := make(chan SweepResult, 1)
	select {
	case c.kick <- reply:
		return <-reply
	default:
		return c.Sweep()
	}
}

// Last returns the most recent sweep result.
func (c *Compactor) Last() SweepResult {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.last
}

func (c *Compactor) loop() {
	defer c.wg.Done()
	ticker := time.NewTicker(c.interval)
	defer ticker.Stop()
	for {
		select {
		case <-c.stop:
			return
		case reply := <-c.kick:
			reply <- c.Sweep()
		case <-ticker.C:
			c.Sweep()
		}
	}
}

// ForceSweep rebuilds every shard regardless of staleness, under the same
// serialisation as Sweep — so a forced compaction never overlaps a
// periodic sweep and never reports spurious rebuild-in-progress errors.
// ok is false when the target cannot force-rebuild.
func (c *Compactor) ForceSweep() (res SweepResult, ok bool) {
	all, ok := c.target.(interface{ RebuildAll() ([]int, error) })
	if !ok {
		return SweepResult{}, false
	}
	c.sweepMu.Lock()
	defer c.sweepMu.Unlock()
	rebuilt, err := all.RebuildAll()
	res = SweepResult{Rebuilt: rebuilt, At: time.Now()}
	if err != nil {
		res.Errs = append(res.Errs, err.Error())
	}
	c.mu.Lock()
	c.last = res
	c.mu.Unlock()
	c.observeSweep(res)
	return res, true
}

// observeSweep records one completed sweep in the lifecycle metrics.
func (c *Compactor) observeSweep(res SweepResult) {
	if !obs.On() {
		return
	}
	obs.CompactorSweeps.Inc()
	obs.CompactorLast.Set(float64(res.At.Unix()))
}

// Sweep finds the stale shards and rebuilds each, recording the result.
// Sweeps are serialised: a second caller blocks until the first finishes,
// then re-evaluates staleness (so it reports the healed state rather than
// spurious rebuild-in-progress errors).
func (c *Compactor) Sweep() SweepResult {
	c.sweepMu.Lock()
	defer c.sweepMu.Unlock()
	res := SweepResult{Stale: c.target.StaleShards(c.th)}
	for _, i := range res.Stale {
		if err := c.target.RebuildShard(i); err != nil {
			res.Errs = append(res.Errs, fmt.Sprintf("shard %d: %v", i, err))
			continue
		}
		res.Rebuilt = append(res.Rebuilt, i)
	}
	res.At = time.Now()
	c.mu.Lock()
	c.last = res
	c.mu.Unlock()
	c.observeSweep(res)
	return res
}
