// Package theory implements the paper's §7 and appendix analysis: the
// Center-Sequence Model (CSM), the mean-first-exit-time (MFET) stochastic
// analysis behind Theorems 7.1–7.4, and the margin-effectiveness formula of
// Eq. 5. The benchmarks use it to verify that the implementation's
// empirical behaviour matches the closed forms:
//
//	Theorem 7.1: E[keys per linear segment]   = ε²/σ²
//	Theorem 7.3: Var[keys per linear segment] = 2ε⁴/(3σ⁴)
//	Theorem 7.4: #segments for a stream of n  → n·σ²/ε²
//	Eq. 5:       effectiveness                = qy/(2ε+qy)
package theory

import (
	"fmt"
	"math"
	"math/rand"
)

// GapKind selects the i.i.d. gap distribution of the CSM sequence.
type GapKind int

const (
	// GapNormal draws gaps from N(μ, σ²).
	GapNormal GapKind = iota
	// GapUniform draws gaps from U(μ−√3σ, μ+√3σ), matching mean μ and
	// variance σ².
	GapUniform
)

// GapDist is an i.i.d. gap distribution with mean Mu and standard
// deviation Sigma.
type GapDist struct {
	Kind  GapKind
	Mu    float64
	Sigma float64
}

// Sample draws one gap.
func (g GapDist) Sample(rng *rand.Rand) float64 {
	switch g.Kind {
	case GapUniform:
		w := math.Sqrt(3) * g.Sigma
		return g.Mu + (rng.Float64()*2-1)*w
	default:
		return g.Mu + rng.NormFloat64()*g.Sigma
	}
}

// FirstExitTime walks the transformed sequence Z_i = Σ(G_j − a) starting at
// 0 and returns the first step at which |Z_i| > eps (the step index is the
// number of keys covered by one linear segment of slope a). The walk stops
// at maxSteps and returns maxSteps if it never exits.
func FirstExitTime(dist GapDist, a, eps float64, maxSteps int, rng *rand.Rand) int {
	z := 0.0
	for i := 1; i <= maxSteps; i++ {
		z += dist.Sample(rng) - a
		if z > eps || z < -eps {
			return i
		}
	}
	return maxSteps
}

// MFETResult summarises a Monte-Carlo estimate of the first-exit time.
type MFETResult struct {
	Mean     float64
	Variance float64
	Trials   int
}

// MeasureMFET estimates the mean and variance of the first-exit time over
// the given number of trials.
func MeasureMFET(dist GapDist, a, eps float64, trials int, rng *rand.Rand) MFETResult {
	if trials < 1 {
		return MFETResult{}
	}
	maxSteps := int(20*eps*eps/(dist.Sigma*dist.Sigma)) + 1000
	var sum, sumSq float64
	for t := 0; t < trials; t++ {
		et := float64(FirstExitTime(dist, a, eps, maxSteps, rng))
		sum += et
		sumSq += et * et
	}
	mean := sum / float64(trials)
	return MFETResult{
		Mean:     mean,
		Variance: sumSq/float64(trials) - mean*mean,
		Trials:   trials,
	}
}

// TheoremMFET returns Theorem 7.1's expected keys per segment, ε²/σ².
func TheoremMFET(eps, sigma float64) float64 { return eps * eps / (sigma * sigma) }

// TheoremMFETVariance returns Theorem 7.3's variance, 2ε⁴/(3σ⁴).
func TheoremMFETVariance(eps, sigma float64) float64 {
	return 2 * math.Pow(eps, 4) / (3 * math.Pow(sigma, 4))
}

// CountSegments simulates a stream of n gaps and counts how many linear
// segments of slope a and margin eps are needed to cover it: every time the
// walk exits the ±eps tube a new segment starts (the renewal process of
// Theorem 7.4).
func CountSegments(dist GapDist, a, eps float64, n int, rng *rand.Rand) int {
	segments := 1
	z := 0.0
	for i := 0; i < n; i++ {
		z += dist.Sample(rng) - a
		if z > eps || z < -eps {
			segments++
			z = 0
		}
	}
	return segments
}

// TheoremSegments returns Theorem 7.4's asymptotic segment count, n·σ²/ε².
func TheoremSegments(n int, eps, sigma float64) float64 {
	return float64(n) * sigma * sigma / (eps * eps)
}

// Effectiveness is Eq. 5: the ratio between the ideal scan area (the result
// parallelogram) and the area the soft-FD index actually scans, for a
// query of extent qy on the dependent axis and a margin of ε.
func Effectiveness(qy, eps float64) float64 {
	if qy < 0 || eps < 0 {
		return math.NaN()
	}
	den := 2*eps + qy
	if den == 0 {
		return 1
	}
	return qy / den
}

// EmpiricalEffectiveness measures the same ratio on simulated data: n
// points uniform in the band y = a·x ± eps over x ∈ [0, xRange], queried
// with y ∈ [ly, ly+qy]. It returns (result count)/(scanned count), where
// the scanned range on x is exactly the translation of Section 4.
func EmpiricalEffectiveness(a, eps, qy, xRange float64, n int, rng *rand.Rand) (float64, error) {
	if a <= 0 || eps < 0 || qy <= 0 || xRange <= 0 || n < 1 {
		return 0, fmt.Errorf("theory: invalid parameters a=%g eps=%g qy=%g xRange=%g n=%d", a, eps, qy, xRange, n)
	}
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = rng.Float64() * xRange
		ys[i] = a*xs[i] + (rng.Float64()*2-1)*eps
	}
	// Query strip on y, placed mid-range so borders do not clip it.
	ly := a*xRange/2 - qy/2
	hy := ly + qy

	// Translated scan range on x (Section 4): ψ(x) ∈ [ly − ε, hy + ε].
	xLo := (ly - eps) / a
	xHi := (hy + eps) / a

	scanned, result := 0, 0
	for i := 0; i < n; i++ {
		if xs[i] >= xLo && xs[i] <= xHi {
			scanned++
			if ys[i] >= ly && ys[i] <= hy {
				result++
			}
		}
	}
	if scanned == 0 {
		return 0, fmt.Errorf("theory: degenerate simulation, nothing scanned")
	}
	return float64(result) / float64(scanned), nil
}

// CenterSequence implements the CSM construction of Appendix B: split the
// x-range into intervals of equal width and return the mean y of every
// non-empty interval, in x order. The gaps of the returned sequence feed
// the stochastic analysis.
func CenterSequence(xs, ys []float64, intervals int) ([]float64, error) {
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("theory: length mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) == 0 || intervals < 1 {
		return nil, fmt.Errorf("theory: need data and ≥1 interval")
	}
	xmin, xmax := xs[0], xs[0]
	for _, x := range xs {
		if x < xmin {
			xmin = x
		}
		if x > xmax {
			xmax = x
		}
	}
	if xmax == xmin {
		return nil, fmt.Errorf("theory: constant x cannot be segmented")
	}
	w := (xmax - xmin) / float64(intervals)
	sums := make([]float64, intervals)
	counts := make([]int, intervals)
	for i := range xs {
		b := int((xs[i] - xmin) / w)
		if b >= intervals {
			b = intervals - 1
		}
		sums[b] += ys[i]
		counts[b]++
	}
	var out []float64
	for b := 0; b < intervals; b++ {
		if counts[b] > 0 {
			out = append(out, sums[b]/float64(counts[b]))
		}
	}
	return out, nil
}

// Gaps returns the successive differences of a sequence: gaps[i] =
// seq[i+1] − seq[i].
func Gaps(seq []float64) []float64 {
	if len(seq) < 2 {
		return nil
	}
	out := make([]float64, len(seq)-1)
	for i := range out {
		out[i] = seq[i+1] - seq[i]
	}
	return out
}
