package theory

import (
	"math"
	"math/rand"
	"testing"

	"github.com/coax-index/coax/internal/model"
	"github.com/coax-index/coax/internal/stats"
)

// Theorem 7.1: with slope a = μ and ε ≫ σ, E[first exit] ≈ ε²/σ².
func TestTheorem71MFET(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	dist := GapDist{Kind: GapNormal, Mu: 1.0, Sigma: 0.5}
	for _, eps := range []float64{5, 10, 20} {
		got := MeasureMFET(dist, dist.Mu, eps, 3000, rng)
		want := TheoremMFET(eps, dist.Sigma)
		ratio := got.Mean / want
		if ratio < 0.8 || ratio > 1.2 {
			t.Errorf("eps=%g: MFET %g vs theory %g (ratio %g)", eps, got.Mean, want, ratio)
		}
	}
}

// Theorem 7.2: the expected segment length is maximised at slope a = μ.
func TestTheorem72SlopeOptimality(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	dist := GapDist{Kind: GapNormal, Mu: 2.0, Sigma: 0.5}
	const eps = 10.0
	atMu := MeasureMFET(dist, dist.Mu, eps, 2000, rng).Mean
	for _, off := range []float64{-0.2, -0.1, 0.1, 0.2} {
		biased := MeasureMFET(dist, dist.Mu+off, eps, 2000, rng).Mean
		if biased >= atMu {
			t.Errorf("slope offset %g yields MFET %g ≥ optimum %g", off, biased, atMu)
		}
	}
}

// Theorem 7.3: Var[first exit] ≈ 2ε⁴/(3σ⁴).
func TestTheorem73Variance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dist := GapDist{Kind: GapNormal, Mu: 1.0, Sigma: 0.4}
	const eps = 8.0
	got := MeasureMFET(dist, dist.Mu, eps, 8000, rng)
	want := TheoremMFETVariance(eps, dist.Sigma)
	ratio := got.Variance / want
	if ratio < 0.7 || ratio > 1.3 {
		t.Errorf("variance %g vs theory %g (ratio %g)", got.Variance, want, ratio)
	}
}

// Theorem 7.4: segments to cover a stream of n keys → n·σ²/ε².
func TestTheorem74SegmentCount(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	dist := GapDist{Kind: GapNormal, Mu: 1.5, Sigma: 0.5}
	const eps = 12.0
	const n = 2000000
	got := CountSegments(dist, dist.Mu, eps, n, rng)
	want := TheoremSegments(n, eps, dist.Sigma)
	ratio := float64(got) / want
	if ratio < 0.8 || ratio > 1.2 {
		t.Errorf("segments %d vs theory %g (ratio %g)", got, want, ratio)
	}
}

// Theorem 7.4 cross-check against the real spline fitter: the greedy
// ε-bounded spline over a simulated soft-FD stream needs Θ(n·σ²/ε²)
// segments.
func TestTheorem74AgainstSplineFitter(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const n = 200000
	const mu, sigma = 1.0, 0.5
	const eps = 10.0
	xs := make([]float64, n)
	ys := make([]float64, n)
	y := 0.0
	for i := 0; i < n; i++ {
		y += mu + rng.NormFloat64()*sigma
		xs[i] = float64(i)
		ys[i] = y
	}
	sp, err := model.FitSplineMaxError(xs, ys, eps)
	if err != nil {
		t.Fatal(err)
	}
	want := TheoremSegments(n, eps, sigma)
	ratio := float64(sp.NumSegments()) / want
	// The greedy fitter re-fits the slope per segment rather than using μ,
	// so it needs somewhat fewer segments than the renewal bound; accept a
	// generous band around the prediction.
	if ratio < 0.1 || ratio > 2.0 {
		t.Errorf("spline segments %d vs theory %g (ratio %g)", sp.NumSegments(), want, ratio)
	}
}

func TestEffectivenessFormula(t *testing.T) {
	cases := []struct{ qy, eps, want float64 }{
		{100, 0, 1},
		{100, 50, 0.5},
		{0, 0, 1},
		{0, 10, 0},
		{200, 100, 0.5},
	}
	for _, c := range cases {
		if got := Effectiveness(c.qy, c.eps); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Effectiveness(%g,%g) = %g, want %g", c.qy, c.eps, got, c.want)
		}
	}
	if !math.IsNaN(Effectiveness(-1, 1)) {
		t.Error("negative extent should be NaN")
	}
}

// Empirical effectiveness on simulated data must track Eq. 5 closely, and
// must approach 1 as ε → 0.
func TestEmpiricalEffectivenessMatchesEq5(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const a, xRange = 2.0, 10000.0
	for _, tc := range []struct{ eps, qy float64 }{
		{10, 100},
		{50, 100},
		{100, 100},
		{5, 500},
	} {
		got, err := EmpiricalEffectiveness(a, tc.eps, tc.qy, xRange, 400000, rng)
		if err != nil {
			t.Fatal(err)
		}
		want := Effectiveness(tc.qy, tc.eps)
		if math.Abs(got-want) > 0.08 {
			t.Errorf("eps=%g qy=%g: empirical %g vs Eq.5 %g", tc.eps, tc.qy, got, want)
		}
	}
}

func TestEmpiricalEffectivenessValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	if _, err := EmpiricalEffectiveness(0, 1, 1, 1, 10, rng); err == nil {
		t.Error("zero slope must error")
	}
	if _, err := EmpiricalEffectiveness(1, 1, 0, 1, 10, rng); err == nil {
		t.Error("zero query extent must error")
	}
}

func TestGapDistMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, kind := range []GapKind{GapNormal, GapUniform} {
		dist := GapDist{Kind: kind, Mu: 3, Sigma: 0.7}
		xs := make([]float64, 200000)
		for i := range xs {
			xs[i] = dist.Sample(rng)
		}
		if m := stats.Mean(xs); math.Abs(m-3) > 0.02 {
			t.Errorf("kind %d: mean %g, want 3", kind, m)
		}
		if sd := stats.StdDev(xs); math.Abs(sd-0.7) > 0.02 {
			t.Errorf("kind %d: stddev %g, want 0.7", kind, sd)
		}
	}
}

func TestCenterSequence(t *testing.T) {
	// y = 2x exactly: interval means must climb linearly, so gaps are
	// near-constant.
	n := 10000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = float64(i)
		ys[i] = 2 * float64(i)
	}
	seq, err := CenterSequence(xs, ys, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != 100 {
		t.Fatalf("sequence length %d, want 100", len(seq))
	}
	gaps := Gaps(seq)
	gm := stats.Mean(gaps)
	if math.Abs(gm-200) > 5 { // 2 * (10000/100 interval width)
		t.Errorf("gap mean %g, want ≈ 200", gm)
	}
	if sd := stats.StdDev(gaps); sd > 5 {
		t.Errorf("noiseless line should give near-constant gaps, σ = %g", sd)
	}
}

func TestCenterSequenceErrors(t *testing.T) {
	if _, err := CenterSequence([]float64{1}, []float64{1, 2}, 4); err == nil {
		t.Error("length mismatch must error")
	}
	if _, err := CenterSequence(nil, nil, 4); err == nil {
		t.Error("empty input must error")
	}
	if _, err := CenterSequence([]float64{1, 1}, []float64{1, 2}, 4); err == nil {
		t.Error("constant x must error")
	}
}

func TestGapsShort(t *testing.T) {
	if Gaps([]float64{1}) != nil {
		t.Error("single-element sequence has no gaps")
	}
	g := Gaps([]float64{1, 3, 6})
	if len(g) != 2 || g[0] != 2 || g[1] != 3 {
		t.Errorf("Gaps = %v", g)
	}
}
