package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %g, want 5", m)
	}
	if v := Variance(xs); v != 4 {
		t.Errorf("Variance = %g, want 4", v)
	}
	if sd := StdDev(xs); sd != 2 {
		t.Errorf("StdDev = %g, want 2", sd)
	}
}

func TestMeanEmptyAndVarianceSmall(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) should be 0")
	}
	if Variance([]float64{42}) != 0 {
		t.Error("Variance of a single value should be 0")
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 0})
	if min != -1 || max != 7 {
		t.Errorf("MinMax = (%g,%g), want (-1,7)", min, max)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.75, 4},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile of empty data should be NaN")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	Quantile(xs, 0.5)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Error("Quantile must not reorder its input")
	}
}

func TestQuantilesBoundaries(t *testing.T) {
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i)
	}
	b := Quantiles(xs, 4)
	if len(b) != 5 {
		t.Fatalf("Quantiles returned %d boundaries, want 5", len(b))
	}
	if b[0] != 0 || b[4] != 999 {
		t.Errorf("extreme boundaries = %g, %g", b[0], b[4])
	}
	// Roughly equal counts per bucket.
	for i := 1; i < 4; i++ {
		want := float64(i) * 999 / 4
		if !almostEqual(b[i], want, 2) {
			t.Errorf("boundary %d = %g, want ≈ %g", i, b[i], want)
		}
	}
	if !sort.Float64sAreSorted(b) {
		t.Error("boundaries must be ascending")
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if r := Pearson(xs, ys); !almostEqual(r, 1, 1e-12) {
		t.Errorf("perfect positive correlation: r = %g", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if r := Pearson(xs, neg); !almostEqual(r, -1, 1e-12) {
		t.Errorf("perfect negative correlation: r = %g", r)
	}
	if r := Pearson(xs, []float64{3, 3, 3, 3, 3}); r != 0 {
		t.Errorf("constant column: r = %g, want 0", r)
	}
	if r := Pearson(xs, []float64{1, 2}); r != 0 {
		t.Errorf("length mismatch: r = %g, want 0", r)
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0, 0.1, 0.5, 0.9, 1.0}
	h := Histogram(xs, 2, 0, 1)
	// Bin 0 covers [0, 0.5), bin 1 covers [0.5, 1] (upper edge inclusive).
	if h[0] != 2 || h[1] != 3 {
		t.Errorf("Histogram = %v, want [2 3]", h)
	}
	// Out-of-range values are dropped.
	h = Histogram([]float64{-1, 2}, 2, 0, 1)
	if h[0] != 0 || h[1] != 0 {
		t.Errorf("out-of-range values should be ignored: %v", h)
	}
}

func TestKLFromUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	uniform := make([]float64, 50000)
	for i := range uniform {
		uniform[i] = rng.Float64()
	}
	if kl := KLFromUniform(uniform, 32); kl > 0.01 {
		t.Errorf("uniform data should have tiny KL, got %g", kl)
	}

	skewed := make([]float64, 50000)
	for i := range skewed {
		skewed[i] = math.Pow(rng.Float64(), 8)
	}
	klSkew := KLFromUniform(skewed, 32)
	if klSkew < 0.5 {
		t.Errorf("heavily skewed data should have large KL, got %g", klSkew)
	}

	if kl := KLFromUniform([]float64{1, 1, 1}, 8); !almostEqual(kl, math.Log(8), 1e-12) {
		t.Errorf("constant column KL = %g, want log(8)", kl)
	}
}

func TestSampleIndices(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	got := SampleIndices(100, 10, rng)
	if len(got) != 10 {
		t.Fatalf("len = %d, want 10", len(got))
	}
	seen := map[int]bool{}
	for _, i := range got {
		if i < 0 || i >= 100 {
			t.Fatalf("index %d out of range", i)
		}
		if seen[i] {
			t.Fatalf("duplicate index %d", i)
		}
		seen[i] = true
	}
	// k >= n returns all indices.
	all := SampleIndices(5, 10, rng)
	if len(all) != 5 {
		t.Fatalf("k>n should return n indices, got %d", len(all))
	}
}

// Property: SampleIndices always returns distinct, in-range indices.
func TestSampleIndicesProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(500)
		k := 1 + r.Intn(500)
		out := SampleIndices(n, k, r)
		wantLen := k
		if k > n {
			wantLen = n
		}
		if len(out) != wantLen {
			return false
		}
		seen := map[int]bool{}
		for _, i := range out {
			if i < 0 || i >= n || seen[i] {
				return false
			}
			seen[i] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestReservoir(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	r := NewReservoir(100, rng)
	for i := 0; i < 10000; i++ {
		r.Push(float64(i))
	}
	if r.Seen() != 10000 {
		t.Errorf("Seen = %d", r.Seen())
	}
	s := r.Sample()
	if len(s) != 100 {
		t.Fatalf("sample size = %d, want 100", len(s))
	}
	// The sample mean should be near the stream mean (weak but real check).
	if m := Mean(s); m < 3000 || m > 7000 {
		t.Errorf("reservoir sample mean %g implausibly far from 5000", m)
	}
}

func TestReservoirSmallStream(t *testing.T) {
	r := NewReservoir(10, rand.New(rand.NewSource(1)))
	r.Push(1)
	r.Push(2)
	if len(r.Sample()) != 2 {
		t.Errorf("reservoir over short stream should keep everything")
	}
}
