// Package stats provides the statistical primitives shared by the soft-FD
// learner, the dataset generators, and the theory module: moments, quantiles,
// histograms, correlation, KL divergence, and reservoir sampling.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 when len(xs) < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MinMax returns the smallest and largest value in xs. It panics on an
// empty slice because callers always operate on non-empty columns.
func MinMax(xs []float64) (min, max float64) {
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. xs is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return QuantileSorted(sorted, q)
}

// QuantileSorted is Quantile for data already in ascending order.
func QuantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Quantiles returns k+1 boundary values splitting sorted data into k
// equal-count buckets: the 0, 1/k, 2/k, …, 1 quantiles. Used by the grid
// file and column files to place grid lines along the CDF.
func Quantiles(xs []float64, k int) []float64 {
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	out := make([]float64, k+1)
	for i := 0; i <= k; i++ {
		out[i] = QuantileSorted(sorted, float64(i)/float64(k))
	}
	return out
}

// Pearson returns the Pearson correlation coefficient between xs and ys.
// It returns 0 when either column is constant.
func Pearson(xs, ys []float64) float64 {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Histogram counts xs into bins uniform bins over [min, max]. Values at the
// upper edge land in the last bin.
func Histogram(xs []float64, bins int, min, max float64) []int {
	counts := make([]int, bins)
	if max <= min || bins == 0 {
		return counts
	}
	w := (max - min) / float64(bins)
	for _, x := range xs {
		if x < min || x > max {
			continue
		}
		b := int((x - min) / w)
		if b >= bins {
			b = bins - 1
		}
		counts[b]++
	}
	return counts
}

// KLFromUniform computes D_KL(P ‖ uniform) over the empirical distribution
// of xs discretised into bins uniform bins (paper §B.3, Eq. 7). Smaller
// values mean the data is closer to uniform, the regime where the CSM
// analysis is tight.
func KLFromUniform(xs []float64, bins int) float64 {
	if len(xs) == 0 || bins <= 0 {
		return 0
	}
	min, max := MinMax(xs)
	if max == min {
		// A constant column is maximally concentrated: all mass in one of
		// bins cells.
		return math.Log(float64(bins))
	}
	counts := Histogram(xs, bins, min, max)
	n := float64(len(xs))
	u := 1.0 / float64(bins)
	kl := 0.0
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / n
		kl += p * math.Log(p/u)
	}
	if kl < 0 {
		kl = 0 // guard against rounding
	}
	return kl
}
