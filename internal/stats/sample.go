package stats

import "math/rand"

// SampleIndices returns k distinct indices drawn uniformly from [0, n).
// When k >= n it returns all indices 0..n-1 in shuffled order. The result
// order is unspecified.
func SampleIndices(n, k int, rng *rand.Rand) []int {
	if k >= n {
		out := rng.Perm(n)
		return out
	}
	// Floyd's algorithm: O(k) space, no full permutation of n.
	chosen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		t := rng.Intn(j + 1)
		if _, dup := chosen[t]; dup {
			t = j
		}
		chosen[t] = struct{}{}
		out = append(out, t)
	}
	return out
}

// Reservoir fills a k-sample from a stream of values using reservoir
// sampling. Push may be called any number of times; Sample returns the
// current reservoir (aliased, not copied).
type Reservoir struct {
	k    int
	seen int
	buf  []float64
	rng  *rand.Rand
}

// NewReservoir creates a reservoir holding at most k values.
func NewReservoir(k int, rng *rand.Rand) *Reservoir {
	return &Reservoir{k: k, buf: make([]float64, 0, k), rng: rng}
}

// Push offers one value to the reservoir.
func (r *Reservoir) Push(v float64) {
	r.seen++
	if len(r.buf) < r.k {
		r.buf = append(r.buf, v)
		return
	}
	j := r.rng.Intn(r.seen)
	if j < r.k {
		r.buf[j] = v
	}
}

// Sample returns the values currently held. The slice aliases internal
// storage.
func (r *Reservoir) Sample() []float64 { return r.buf }

// Seen reports how many values have been offered in total.
func (r *Reservoir) Seen() int { return r.seen }
