package stats

import "math/rand"

// SampleIndices returns k distinct indices drawn uniformly from [0, n).
// When k >= n it returns all indices 0..n-1 in shuffled order. The result
// order is unspecified.
func SampleIndices(n, k int, rng *rand.Rand) []int {
	if k >= n {
		out := rng.Perm(n)
		return out
	}
	// Floyd's algorithm: O(k) space, no full permutation of n.
	chosen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		t := rng.Intn(j + 1)
		if _, dup := chosen[t]; dup {
			t = j
		}
		chosen[t] = struct{}{}
		out = append(out, t)
	}
	return out
}

// Reservoir fills a k-sample from a stream of values using reservoir
// sampling. Push may be called any number of times; Sample returns the
// current reservoir (aliased, not copied).
type Reservoir struct {
	k    int
	seen int
	buf  []float64
	rng  *rand.Rand
}

// NewReservoir creates a reservoir holding at most k values.
func NewReservoir(k int, rng *rand.Rand) *Reservoir {
	return &Reservoir{k: k, buf: make([]float64, 0, k), rng: rng}
}

// Push offers one value to the reservoir.
func (r *Reservoir) Push(v float64) {
	r.seen++
	if len(r.buf) < r.k {
		r.buf = append(r.buf, v)
		return
	}
	j := r.rng.Intn(r.seen)
	if j < r.k {
		r.buf[j] = v
	}
}

// Sample returns the values currently held. The slice aliases internal
// storage.
func (r *Reservoir) Sample() []float64 { return r.buf }

// Seen reports how many values have been offered in total.
func (r *Reservoir) Seen() int { return r.seen }

// RowReservoir maintains a uniform k-row sample of a row stream — the
// bounded-memory half of sampled soft-FD detection. Until k rows have been
// offered the reservoir holds every row in arrival order, so small inputs
// can be recovered exactly (and in order) for a full-scan build.
type RowReservoir struct {
	k    int
	dims int
	seen int
	data []float64 // len = min(seen, k) * dims
	rng  *rand.Rand
}

// NewRowReservoir creates a reservoir holding at most k rows of dims
// columns.
func NewRowReservoir(k, dims int, rng *rand.Rand) *RowReservoir {
	return &RowReservoir{k: k, dims: dims, data: make([]float64, 0, k*dims), rng: rng}
}

// Push offers one row (copied) to the reservoir.
func (r *RowReservoir) Push(row []float64) {
	r.seen++
	if len(r.data) < r.k*r.dims {
		r.data = append(r.data, row...)
		return
	}
	j := r.rng.Intn(r.seen)
	if j < r.k {
		copy(r.data[j*r.dims:(j+1)*r.dims], row)
	}
}

// Len reports the number of rows currently held.
func (r *RowReservoir) Len() int {
	if r.dims == 0 {
		return 0
	}
	return len(r.data) / r.dims
}

// Seen reports how many rows have been offered in total.
func (r *RowReservoir) Seen() int { return r.seen }

// Saturated reports whether rows have been displaced: false means the
// reservoir still holds every offered row in arrival order.
func (r *RowReservoir) Saturated() bool { return r.seen > r.Len() }

// Rows returns the sampled rows as a row-major buffer aliasing internal
// storage; callers must not retain it across Push.
func (r *RowReservoir) Rows() []float64 { return r.data }
