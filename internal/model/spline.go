package model

import (
	"fmt"
	"math"
	"sort"
)

// Spline is a piecewise-linear model: segment i applies on x ∈
// [Knots[i], Knots[i+1]). It implements the non-linear soft-FD extension the
// paper analyses in §7.2 (Theorem 7.4 bounds the number of segments a spline
// needs for a target margin ε).
type Spline struct {
	Knots []float64 // len = len(Segs)+1, ascending
	Segs  []Linear
}

// NumSegments reports the number of linear pieces.
func (s Spline) NumSegments() int { return len(s.Segs) }

// Predict evaluates the spline at x. Outside the knot range the first or
// last segment is extrapolated.
func (s Spline) Predict(x float64) float64 {
	if len(s.Segs) == 0 {
		return 0
	}
	// Last segment whose starting knot is ≤ x: segments own their left
	// boundary, so a point equal to Knots[i] is evaluated by segment i.
	i := sort.Search(len(s.Knots), func(j int) bool { return s.Knots[j] > x }) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(s.Segs) {
		i = len(s.Segs) - 1
	}
	return s.Segs[i].Predict(x)
}

// SizeBytes reports the in-memory footprint of the spline parameters,
// counted against the COAX model overhead.
func (s Spline) SizeBytes() int64 {
	return int64(len(s.Knots)*8 + len(s.Segs)*16)
}

// FitSplineMaxError fits a piecewise-linear spline over points sorted by x
// such that every point's vertical distance to its segment is at most eps.
// It uses the shrinking-cone greedy algorithm (the same construction as
// FITing-tree / PGM segmentation): extend the current segment while a line
// from the segment origin can still pass within ±eps of every point; start
// a new segment otherwise. The number of segments produced is the quantity
// Theorem 7.4 predicts to converge to n·σ²/ε².
func FitSplineMaxError(xs, ys []float64, eps float64) (Spline, error) {
	n := len(xs)
	if n == 0 {
		return Spline{}, fmt.Errorf("model: no points to fit")
	}
	if n != len(ys) {
		return Spline{}, fmt.Errorf("model: length mismatch x=%d y=%d", len(xs), len(ys))
	}
	if eps <= 0 {
		return Spline{}, fmt.Errorf("model: eps must be positive, got %g", eps)
	}
	for i := 1; i < n; i++ {
		if xs[i] < xs[i-1] {
			return Spline{}, fmt.Errorf("model: xs must be ascending (violated at %d)", i)
		}
	}

	var sp Spline
	start := 0
	for start < n {
		end, seg := growSegment(xs, ys, start, eps)
		sp.Knots = append(sp.Knots, xs[start])
		sp.Segs = append(sp.Segs, seg)
		start = end
	}
	sp.Knots = append(sp.Knots, xs[n-1])
	return sp, nil
}

// growSegment extends a segment beginning at index start as far as the
// shrinking slope cone permits, returning the first index past the segment
// and the fitted line through the cone midpoint.
func growSegment(xs, ys []float64, start int, eps float64) (end int, seg Linear) {
	x0, y0 := xs[start], ys[start]
	loSlope, hiSlope := math.Inf(-1), math.Inf(1)
	end = start + 1
	for end < len(xs) {
		dx := xs[end] - x0
		if dx == 0 {
			// Duplicate x: representable only if y within eps of y0.
			if math.Abs(ys[end]-y0) <= eps {
				end++
				continue
			}
			break
		}
		lo := (ys[end] - eps - y0) / dx
		hi := (ys[end] + eps - y0) / dx
		nlo, nhi := loSlope, hiSlope
		if lo > nlo {
			nlo = lo
		}
		if hi < nhi {
			nhi = hi
		}
		if nlo > nhi {
			// Absorbing this point would empty the slope cone; the committed
			// bounds must stay valid for the points already covered.
			break
		}
		loSlope, hiSlope = nlo, nhi
		end++
	}
	slope := 0.0
	switch {
	case math.IsInf(loSlope, -1) && math.IsInf(hiSlope, 1):
		slope = 0 // single-point segment
	case math.IsInf(loSlope, -1):
		slope = hiSlope
	case math.IsInf(hiSlope, 1):
		slope = loSlope
	default:
		slope = (loSlope + hiSlope) / 2
	}
	return end, Linear{Slope: slope, Intercept: y0 - slope*x0}
}

// MaxAbsError returns the largest |ys[i] − Predict(xs[i])| over the points,
// used by tests to verify the ε guarantee.
func (s Spline) MaxAbsError(xs, ys []float64) float64 {
	worst := 0.0
	for i := range xs {
		if d := math.Abs(ys[i] - s.Predict(xs[i])); d > worst {
			worst = d
		}
	}
	return worst
}
