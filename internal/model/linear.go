// Package model implements the regression models COAX fits over soft
// functional dependencies: ordinary least squares, a conjugate Bayesian
// linear model supporting sequential updates (the paper trains with pymc3;
// we use the closed-form Normal–inverse-gamma posterior), and bounded-error
// piecewise-linear splines for the non-linear extension sketched in §7.2.
package model

import (
	"errors"
	"fmt"
	"math"
)

// Linear is the affine model ψ̂(x) = Slope·x + Intercept used to predict a
// dependent attribute from an indexed attribute.
type Linear struct {
	Slope     float64
	Intercept float64
}

// Predict evaluates the model at x.
func (l Linear) Predict(x float64) float64 { return l.Slope*x + l.Intercept }

// Invert solves ψ̂(x) = y for x. ok is false when the slope is (numerically)
// zero, in which case no information about x can be inferred from y.
func (l Linear) Invert(y float64) (x float64, ok bool) {
	if l.Slope == 0 || math.IsInf(l.Slope, 0) || math.IsNaN(l.Slope) {
		return 0, false
	}
	return (y - l.Intercept) / l.Slope, true
}

// Diagnostics summarises the quality of a fit.
type Diagnostics struct {
	N    int     // points used
	R2   float64 // coefficient of determination, 0 when Y is constant
	RMSE float64 // root mean squared residual
}

// ErrDegenerate is returned when a model cannot be fitted: fewer than two
// points, or a constant predictor column.
var ErrDegenerate = errors.New("model: degenerate input (need ≥2 points with varying x)")

// FitOLS fits ψ̂ by ordinary least squares on (xs[i], ys[i]) with optional
// per-point weights; pass nil weights for an unweighted fit. The weighted
// form is what Algorithm 1 needs: bucket centres weighted by cell counts.
func FitOLS(xs, ys, weights []float64) (Linear, Diagnostics, error) {
	n := len(xs)
	if n != len(ys) || (weights != nil && n != len(weights)) {
		return Linear{}, Diagnostics{}, fmt.Errorf("model: length mismatch x=%d y=%d w=%d", len(xs), len(ys), len(weights))
	}
	if n < 2 {
		return Linear{}, Diagnostics{}, ErrDegenerate
	}
	var sw, sx, sy float64
	for i := 0; i < n; i++ {
		w := 1.0
		if weights != nil {
			w = weights[i]
		}
		sw += w
		sx += w * xs[i]
		sy += w * ys[i]
	}
	if sw == 0 {
		return Linear{}, Diagnostics{}, ErrDegenerate
	}
	mx, my := sx/sw, sy/sw
	var sxx, sxy, syy float64
	for i := 0; i < n; i++ {
		w := 1.0
		if weights != nil {
			w = weights[i]
		}
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += w * dx * dx
		sxy += w * dx * dy
		syy += w * dy * dy
	}
	if sxx == 0 {
		return Linear{}, Diagnostics{}, ErrDegenerate
	}
	m := sxy / sxx
	b := my - m*mx
	l := Linear{Slope: m, Intercept: b}

	// Residual diagnostics.
	var sse float64
	for i := 0; i < n; i++ {
		w := 1.0
		if weights != nil {
			w = weights[i]
		}
		r := ys[i] - l.Predict(xs[i])
		sse += w * r * r
	}
	d := Diagnostics{N: n, RMSE: math.Sqrt(sse / sw)}
	if syy > 0 {
		d.R2 = 1 - sse/syy
		if d.R2 < 0 {
			d.R2 = 0
		}
	}
	return l, d, nil
}

// Residuals returns ys[i] − ψ̂(xs[i]) for every point; the displacements of
// Algorithm 1 that decide primary-versus-outlier membership.
func (l Linear) Residuals(xs, ys []float64) []float64 {
	out := make([]float64, len(xs))
	for i := range xs {
		out[i] = ys[i] - l.Predict(xs[i])
	}
	return out
}
