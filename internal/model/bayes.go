package model

import "math"

// BayesianLinear is a conjugate Bayesian simple linear regression with a
// Normal–inverse-gamma prior. The paper fits its soft-FD model with pymc3
// and notes (§5) that using a Bayesian method lets the index "use the
// previous gradient and intercept and continuously adjust" as new records
// arrive; this type provides the same capability in closed form with
// sequential Update calls — no sampling library required.
//
// Internally it tracks sufficient statistics under the design matrix
// Φ = [1 x] with prior precision λI, so the posterior mean equals ridge
// regression and uncertainty is available from the residual statistics.
type BayesianLinear struct {
	lambda float64 // prior precision (ridge strength)

	n   float64
	sx  float64
	sy  float64
	sxx float64
	sxy float64
	syy float64
}

// NewBayesianLinear creates a model with prior precision lambda. A small
// lambda (e.g. 1e-6) behaves like OLS while remaining well-posed on
// degenerate data.
func NewBayesianLinear(lambda float64) *BayesianLinear {
	if lambda <= 0 {
		lambda = 1e-6
	}
	return &BayesianLinear{lambda: lambda}
}

// Update folds one observation into the posterior.
func (b *BayesianLinear) Update(x, y float64) {
	b.n++
	b.sx += x
	b.sy += y
	b.sxx += x * x
	b.sxy += x * y
	b.syy += y * y
}

// UpdateBatch folds a batch of observations into the posterior.
func (b *BayesianLinear) UpdateBatch(xs, ys []float64) {
	for i := range xs {
		b.Update(xs[i], ys[i])
	}
}

// N reports the number of observations absorbed so far.
func (b *BayesianLinear) N() int { return int(b.n) }

// Posterior returns the MAP estimate of the line. With fewer than two
// observations it returns the zero model.
func (b *BayesianLinear) Posterior() Linear {
	// Solve (ΦᵀΦ + λI) w = Φᵀy for w = (intercept, slope).
	a11 := b.n + b.lambda
	a12 := b.sx
	a22 := b.sxx + b.lambda
	det := a11*a22 - a12*a12
	if det == 0 || b.n < 2 {
		return Linear{}
	}
	intercept := (a22*b.sy - a12*b.sxy) / det
	slope := (a11*b.sxy - a12*b.sy) / det
	return Linear{Slope: slope, Intercept: intercept}
}

// ResidualStdDev estimates the posterior residual standard deviation — the
// σ that margin selection compares against ε. Returns 0 with fewer than
// three observations.
func (b *BayesianLinear) ResidualStdDev() float64 {
	if b.n < 3 {
		return 0
	}
	l := b.Posterior()
	// SSE = Σ(y − mx − c)² expanded over sufficient statistics.
	m, c := l.Slope, l.Intercept
	sse := b.syy - 2*m*b.sxy - 2*c*b.sy + m*m*b.sxx + 2*m*c*b.sx + c*c*b.n
	if sse < 0 {
		sse = 0
	}
	return math.Sqrt(sse / (b.n - 2))
}
