package model

import (
	"testing"

	"github.com/coax-index/coax/internal/binio"
)

func TestLinearCodecRoundTrip(t *testing.T) {
	l := Linear{Slope: -3.25, Intercept: 17}
	w := binio.NewWriter()
	l.Encode(w)
	r := binio.NewReader(w.Bytes())
	if got := DecodeLinear(r); got != l {
		t.Fatalf("got %+v, want %+v", got, l)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSplineCodecRoundTrip(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	ys := []float64{0, 1, 4, 9, 16, 25, 36, 49, 64, 81}
	sp, err := FitSplineMaxError(xs, ys, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	w := binio.NewWriter()
	sp.Encode(w)
	r := binio.NewReader(w.Bytes())
	got, err := DecodeSpline(r)
	if err != nil {
		t.Fatalf("DecodeSpline: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if got.NumSegments() != sp.NumSegments() {
		t.Fatalf("segments %d, want %d", got.NumSegments(), sp.NumSegments())
	}
	for _, x := range []float64{-1, 0, 2.5, 4.7, 9, 12} {
		if got.Predict(x) != sp.Predict(x) {
			t.Fatalf("Predict(%g) diverges", x)
		}
	}
}

func TestSplineCodecRejectsBadStructure(t *testing.T) {
	// Knot count disagrees with segment count.
	w := binio.NewWriter()
	w.Float64s([]float64{0, 1, 2}) // 3 knots
	w.Uint64(1)                    // but 1 segment wants 2
	Linear{}.Encode(w)
	if _, err := DecodeSpline(binio.NewReader(w.Bytes())); err == nil {
		t.Fatal("mismatched knots accepted")
	}

	// Knots out of order.
	w = binio.NewWriter()
	w.Float64s([]float64{2, 1})
	w.Uint64(1)
	Linear{}.Encode(w)
	if _, err := DecodeSpline(binio.NewReader(w.Bytes())); err == nil {
		t.Fatal("descending knots accepted")
	}
}
