package model

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFitOLSExactLine(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3*x - 7
	}
	lin, diag, err := FitOLS(xs, ys, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lin.Slope-3) > 1e-12 || math.Abs(lin.Intercept+7) > 1e-12 {
		t.Errorf("fit = %+v, want slope 3 intercept -7", lin)
	}
	if diag.R2 < 0.999999 {
		t.Errorf("R2 = %g, want ≈1", diag.R2)
	}
	if diag.RMSE > 1e-9 {
		t.Errorf("RMSE = %g, want ≈0", diag.RMSE)
	}
}

func TestFitOLSWeighted(t *testing.T) {
	// Two clusters; weights make the second dominate.
	xs := []float64{0, 1, 10, 11}
	ys := []float64{0, 0, 10, 11}
	w := []float64{1, 1, 1000, 1000}
	lin, _, err := FitOLS(xs, ys, w)
	if err != nil {
		t.Fatal(err)
	}
	// Heavily weighted pair implies slope ≈ 1 through (10,10)-(11,11).
	if math.Abs(lin.Slope-1) > 0.1 {
		t.Errorf("weighted slope = %g, want ≈1", lin.Slope)
	}
}

func TestFitOLSDegenerate(t *testing.T) {
	if _, _, err := FitOLS([]float64{1}, []float64{1}, nil); !errors.Is(err, ErrDegenerate) {
		t.Errorf("single point: err = %v, want ErrDegenerate", err)
	}
	if _, _, err := FitOLS([]float64{2, 2, 2}, []float64{1, 2, 3}, nil); !errors.Is(err, ErrDegenerate) {
		t.Errorf("constant x: err = %v, want ErrDegenerate", err)
	}
	if _, _, err := FitOLS([]float64{1, 2}, []float64{1}, nil); err == nil {
		t.Error("length mismatch must error")
	}
	if _, _, err := FitOLS([]float64{1, 2}, []float64{1, 2}, []float64{0, 0}); !errors.Is(err, ErrDegenerate) {
		t.Errorf("zero weights: err = %v, want ErrDegenerate", err)
	}
}

func TestFitOLSConstantY(t *testing.T) {
	lin, diag, err := FitOLS([]float64{1, 2, 3}, []float64{5, 5, 5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lin.Slope != 0 || lin.Intercept != 5 {
		t.Errorf("constant y fit = %+v", lin)
	}
	if diag.R2 != 0 {
		t.Errorf("constant y R2 = %g, want 0 by convention", diag.R2)
	}
}

func TestLinearInvert(t *testing.T) {
	l := Linear{Slope: 2, Intercept: 1}
	x, ok := l.Invert(5)
	if !ok || x != 2 {
		t.Errorf("Invert(5) = %g,%v want 2,true", x, ok)
	}
	if _, ok := (Linear{Slope: 0}).Invert(1); ok {
		t.Error("zero slope must not invert")
	}
	if _, ok := (Linear{Slope: math.NaN()}).Invert(1); ok {
		t.Error("NaN slope must not invert")
	}
}

func TestResiduals(t *testing.T) {
	l := Linear{Slope: 1, Intercept: 0}
	res := l.Residuals([]float64{1, 2}, []float64{1.5, 1.5})
	if res[0] != 0.5 || res[1] != -0.5 {
		t.Errorf("Residuals = %v", res)
	}
}

// Property: OLS slope/intercept recover a noiseless line for any finite
// slope/intercept and distinct xs.
func TestFitOLSRecoversLine(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		slope := r.Float64()*20 - 10
		icept := r.Float64()*20 - 10
		n := 3 + r.Intn(50)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64()*100 - 50
			ys[i] = slope*xs[i] + icept
		}
		lin, _, err := FitOLS(xs, ys, nil)
		if err != nil {
			// Possible with duplicate xs all equal; treat as pass.
			return errors.Is(err, ErrDegenerate)
		}
		return math.Abs(lin.Slope-slope) < 1e-6 && math.Abs(lin.Intercept-icept) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBayesianLinearMatchesOLSInTheLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	xs := make([]float64, 500)
	ys := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.Float64() * 100
		ys[i] = 4*xs[i] + 3 + rng.NormFloat64()
	}
	b := NewBayesianLinear(1e-6)
	b.UpdateBatch(xs, ys)
	post := b.Posterior()
	ols, _, err := FitOLS(xs, ys, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(post.Slope-ols.Slope) > 1e-6 || math.Abs(post.Intercept-ols.Intercept) > 1e-4 {
		t.Errorf("posterior %+v diverges from OLS %+v", post, ols)
	}
	if b.N() != 500 {
		t.Errorf("N = %d", b.N())
	}
	sd := b.ResidualStdDev()
	if sd < 0.8 || sd > 1.2 {
		t.Errorf("ResidualStdDev = %g, want ≈1", sd)
	}
}

func TestBayesianLinearSequentialEqualsBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := NewBayesianLinear(0.01)
	b := NewBayesianLinear(0.01)
	xs := make([]float64, 100)
	ys := make([]float64, 100)
	for i := range xs {
		xs[i] = rng.Float64() * 10
		ys[i] = -2*xs[i] + 5 + rng.NormFloat64()*0.1
	}
	b.UpdateBatch(xs, ys)
	for i := range xs {
		a.Update(xs[i], ys[i])
	}
	pa, pb := a.Posterior(), b.Posterior()
	if pa != pb {
		t.Errorf("sequential %+v != batch %+v", pa, pb)
	}
}

func TestBayesianLinearDegenerate(t *testing.T) {
	b := NewBayesianLinear(0.1)
	if got := b.Posterior(); got != (Linear{}) {
		t.Errorf("empty posterior = %+v, want zero model", got)
	}
	b.Update(1, 1)
	if got := b.Posterior(); got != (Linear{}) {
		t.Errorf("single-point posterior = %+v, want zero model", got)
	}
	if b.ResidualStdDev() != 0 {
		t.Error("ResidualStdDev with <3 points should be 0")
	}
	// Non-positive lambda falls back to a tiny ridge rather than exploding.
	c := NewBayesianLinear(-1)
	c.Update(0, 0)
	c.Update(1, 2)
	if p := c.Posterior(); math.Abs(p.Slope-2) > 0.01 {
		t.Errorf("two-point fit slope = %g, want ≈2", p.Slope)
	}
}

func TestSplineRespectsEpsilon(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 2000
	xs := make([]float64, n)
	ys := make([]float64, n)
	x := 0.0
	for i := 0; i < n; i++ {
		x += rng.Float64()
		xs[i] = x
		ys[i] = math.Sin(x/50)*100 + rng.NormFloat64()
	}
	const eps = 5.0
	sp, err := FitSplineMaxError(xs, ys, eps)
	if err != nil {
		t.Fatal(err)
	}
	if got := sp.MaxAbsError(xs, ys); got > eps+1e-9 {
		t.Errorf("max error %g exceeds eps %g", got, eps)
	}
	if sp.NumSegments() < 2 {
		t.Errorf("a sine wave needs multiple segments, got %d", sp.NumSegments())
	}
	if sp.SizeBytes() <= 0 {
		t.Error("SizeBytes must be positive")
	}
}

func TestSplineSegmentsShrinkWithEpsilon(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n := 5000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = float64(i)
		ys[i] = float64(i) + rng.NormFloat64()*10
	}
	tight, err := FitSplineMaxError(xs, ys, 15)
	if err != nil {
		t.Fatal(err)
	}
	loose, err := FitSplineMaxError(xs, ys, 60)
	if err != nil {
		t.Fatal(err)
	}
	if loose.NumSegments() >= tight.NumSegments() {
		t.Errorf("looser eps should need fewer segments: tight=%d loose=%d",
			tight.NumSegments(), loose.NumSegments())
	}
}

func TestSplineErrors(t *testing.T) {
	if _, err := FitSplineMaxError(nil, nil, 1); err == nil {
		t.Error("empty input must error")
	}
	if _, err := FitSplineMaxError([]float64{1, 2}, []float64{1}, 1); err == nil {
		t.Error("length mismatch must error")
	}
	if _, err := FitSplineMaxError([]float64{1, 2}, []float64{1, 2}, 0); err == nil {
		t.Error("non-positive eps must error")
	}
	if _, err := FitSplineMaxError([]float64{2, 1}, []float64{1, 2}, 1); err == nil {
		t.Error("descending xs must error")
	}
}

func TestSplineDuplicateX(t *testing.T) {
	xs := []float64{0, 0, 0, 1, 1, 2}
	ys := []float64{0, 0.1, -0.1, 1, 1.05, 2}
	sp, err := FitSplineMaxError(xs, ys, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got := sp.MaxAbsError(xs, ys); got > 0.5+1e-9 {
		t.Errorf("duplicate-x error %g exceeds eps", got)
	}
}

func TestSplinePredictEmpty(t *testing.T) {
	var sp Spline
	if sp.Predict(3) != 0 {
		t.Error("empty spline predicts 0")
	}
}

// Property: for random monotone-x data and random eps, the spline always
// respects the error bound and never produces more segments than points.
func TestSplineProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(300)
		xs := make([]float64, n)
		ys := make([]float64, n)
		x := 0.0
		for i := 0; i < n; i++ {
			x += r.Float64()
			xs[i] = x
			ys[i] = r.Float64()*100 - 50
		}
		eps := 0.1 + r.Float64()*20
		sp, err := FitSplineMaxError(xs, ys, eps)
		if err != nil {
			return false
		}
		return sp.MaxAbsError(xs, ys) <= eps+1e-9 && sp.NumSegments() <= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
