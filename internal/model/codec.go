package model

import (
	"fmt"
	"math"

	"github.com/coax-index/coax/internal/binio"
)

// Snapshot codec for model parameters. Linear models are two IEEE-754
// values; splines are the knot vector followed by one line per segment.

// Encode appends the line's parameters to w.
func (l Linear) Encode(w *binio.Writer) {
	w.Float64(l.Slope)
	w.Float64(l.Intercept)
}

// DecodeLinear reads a line written by Linear.Encode.
func DecodeLinear(r *binio.Reader) Linear {
	return Linear{Slope: r.Float64(), Intercept: r.Float64()}
}

// Encode appends the spline's knots and segments to w.
func (s *Spline) Encode(w *binio.Writer) {
	w.Float64s(s.Knots)
	w.Uint64(uint64(len(s.Segs)))
	for _, seg := range s.Segs {
		seg.Encode(w)
	}
}

// DecodeSpline reads a spline written by Spline.Encode and checks its
// structural invariants: len(Knots) == len(Segs)+1 with ascending knots.
func DecodeSpline(r *binio.Reader) (*Spline, error) {
	sp := &Spline{Knots: r.Float64s()}
	nSegs := r.Uint64()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if nSegs == 0 || uint64(len(sp.Knots)) != nSegs+1 {
		return nil, fmt.Errorf("model: spline has %d knots for %d segments", len(sp.Knots), nSegs)
	}
	sp.Segs = make([]Linear, nSegs)
	for i := range sp.Segs {
		sp.Segs[i] = DecodeLinear(r)
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	if math.IsNaN(sp.Knots[0]) {
		return nil, fmt.Errorf("model: spline knot 0 is NaN")
	}
	for i := 1; i < len(sp.Knots); i++ {
		if sp.Knots[i] < sp.Knots[i-1] || math.IsNaN(sp.Knots[i]) {
			return nil, fmt.Errorf("model: spline knots not ascending at %d", i)
		}
	}
	return sp, nil
}
