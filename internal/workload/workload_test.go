package workload

import (
	"math"
	"math/rand"
	"testing"

	"github.com/coax-index/coax/internal/dataset"
	"github.com/coax-index/coax/internal/index"
	"github.com/coax-index/coax/internal/scan"
)

func testTable(n int) *dataset.Table {
	rng := rand.New(rand.NewSource(1))
	t := dataset.NewTable([]string{"a", "b", "c"})
	for i := 0; i < n; i++ {
		t.Append([]float64{rng.Float64() * 1000, rng.NormFloat64() * 5, float64(i)})
	}
	return t
}

func TestPointQueriesHitRows(t *testing.T) {
	tab := testTable(2000)
	g := NewGenerator(tab, 7)
	oracle := scan.New(tab)
	qs := g.PointQueries(50)
	if len(qs) != 50 {
		t.Fatalf("got %d queries", len(qs))
	}
	for i, q := range qs {
		if !q.IsPoint() {
			t.Fatalf("query %d is not a point", i)
		}
		if index.Count(oracle, q) < 1 {
			t.Fatalf("point query %d matches nothing", i)
		}
	}
}

func TestKNNRectsContainKSeeds(t *testing.T) {
	tab := testTable(5000)
	g := NewGenerator(tab, 11)
	oracle := scan.New(tab)
	qs := g.KNNRects(20, 100)
	for i, q := range qs {
		if err := q.Validate(); err != nil {
			t.Fatalf("query %d invalid: %v", i, err)
		}
		n := index.Count(oracle, q)
		// The bounding box of the 100 nearest rows contains at least those
		// 100 rows.
		if n < 100 {
			t.Errorf("query %d matches %d rows, want ≥ 100", i, n)
		}
	}
}

func TestKNNRectsSampledPath(t *testing.T) {
	// Above the exact-KNN cutoff the generator samples; rectangles must
	// still be valid and non-trivial.
	tab := testTable(250000)
	g := NewGenerator(tab, 13)
	qs := g.KNNRects(3, 1000)
	oracle := scan.New(tab)
	for i, q := range qs {
		n := index.Count(oracle, q)
		if n < 10 {
			t.Errorf("sampled KNN query %d matches only %d rows", i, n)
		}
	}
}

func TestSelectivityRects(t *testing.T) {
	tab := testTable(20000)
	g := NewGenerator(tab, 17)
	oracle := scan.New(tab)
	const target = 1000
	qs, err := g.SelectivityRects(15, target)
	if err != nil {
		t.Fatal(err)
	}
	// Correlated columns make individual counts wander; the median should
	// land within a factor of ~4 of the target.
	counts := make([]int, len(qs))
	for i, q := range qs {
		counts[i] = index.Count(oracle, q)
	}
	med := median(counts)
	if med < target/4 || med > target*4 {
		t.Errorf("median selectivity %d too far from target %d (counts %v)", med, target, counts)
	}
}

func TestSelectivityRectsValidation(t *testing.T) {
	g := NewGenerator(testTable(100), 1)
	if _, err := g.SelectivityRects(1, 0); err == nil {
		t.Error("target 0 must error")
	}
	if _, err := g.SelectivityRects(1, 1000); err == nil {
		t.Error("target beyond table size must error")
	}
}

func TestPartialRects(t *testing.T) {
	tab := testTable(5000)
	g := NewGenerator(tab, 19)
	qs := g.PartialRects(10, []int{1}, 0.2)
	for i, q := range qs {
		// Only dimension 1 is constrained.
		if math.IsInf(q.Min[1], -1) && math.IsInf(q.Max[1], 1) {
			t.Errorf("query %d leaves dim 1 unconstrained", i)
		}
		for _, d := range []int{0, 2} {
			if !math.IsInf(q.Min[d], -1) || !math.IsInf(q.Max[d], 1) {
				t.Errorf("query %d constrains dim %d", i, d)
			}
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	tab := testTable(1000)
	a := NewGenerator(tab, 23).PointQueries(5)
	b := NewGenerator(tab, 23).PointQueries(5)
	for i := range a {
		for d := range a[i].Min {
			if a[i].Min[d] != b[i].Min[d] {
				t.Fatal("same seed must generate identical queries")
			}
		}
	}
}

func median(xs []int) int {
	s := append([]int(nil), xs...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}

func TestTinyTableWorkloads(t *testing.T) {
	tab := dataset.NewTable([]string{"a"})
	tab.Append([]float64{1})
	tab.Append([]float64{2})
	g := NewGenerator(tab, 1)
	if qs := g.PointQueries(3); len(qs) != 3 {
		t.Error("point queries on tiny table failed")
	}
	if qs := g.KNNRects(2, 5); len(qs) != 2 {
		t.Error("KNN rects on tiny table failed")
	}
	if _, err := g.SelectivityRects(2, 1); err != nil {
		t.Errorf("selectivity on tiny table: %v", err)
	}
}
