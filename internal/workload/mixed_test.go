package workload

import (
	"math/rand"
	"testing"

	"github.com/coax-index/coax/internal/dataset"
)

func mixBase(n int) *dataset.Table {
	rng := rand.New(rand.NewSource(7))
	t := dataset.NewTable([]string{"x", "d"})
	for i := 0; i < n; i++ {
		x := rng.Float64() * 100
		t.Append([]float64{x, 2 * x})
	}
	return t
}

func TestMixGeneratorMaintainsLiveMultiset(t *testing.T) {
	tab := mixBase(500)
	g := NewMixGenerator(tab, 1, MixConfig{
		InsertWeight: 1, DeleteWeight: 1, UpdateWeight: 1, QueryWeight: 1,
		OutlierFrac: 0.2,
	})
	// Mirror multiset keyed by the row pair.
	count := map[[2]float64]int{}
	for i := 0; i < tab.Len(); i++ {
		r := tab.Row(i)
		count[[2]float64{r[0], r[1]}]++
	}
	kinds := map[OpKind]int{}
	for i := 0; i < 5000; i++ {
		op := g.Next()
		kinds[op.Kind]++
		switch op.Kind {
		case OpInsert:
			count[[2]float64{op.Row[0], op.Row[1]}]++
		case OpDelete:
			k := [2]float64{op.Row[0], op.Row[1]}
			if count[k] == 0 {
				t.Fatalf("op %d deleted a row not in the multiset: %v", i, op.Row)
			}
			count[k]--
		case OpUpdate:
			k := [2]float64{op.Old[0], op.Old[1]}
			if count[k] == 0 {
				t.Fatalf("op %d updated a row not in the multiset: %v", i, op.Old)
			}
			count[k]--
			count[[2]float64{op.New[0], op.New[1]}]++
		case OpQuery:
			if op.Rect.Empty() && g.LiveLen() > 0 {
				t.Fatalf("op %d produced an empty rect over live data", i)
			}
		default:
			t.Fatalf("op %d has unknown kind %v", i, op.Kind)
		}
	}
	for _, k := range []OpKind{OpQuery, OpInsert, OpDelete, OpUpdate} {
		if kinds[k] == 0 {
			t.Errorf("kind %v never generated", k)
		}
	}
	// The generator's view must agree with the mirror.
	view := g.LiveView()
	got := map[[2]float64]int{}
	for i := 0; i < view.Len(); i++ {
		r := view.Row(i)
		got[[2]float64{r[0], r[1]}]++
	}
	for k, c := range count {
		if c != 0 && got[k] != c {
			t.Fatalf("multiset mismatch at %v: view %d, mirror %d", k, got[k], c)
		}
	}
	if view.Len() != g.LiveLen() {
		t.Fatalf("LiveView %d rows, LiveLen %d", view.Len(), g.LiveLen())
	}
}

func TestMixGeneratorDeterministic(t *testing.T) {
	tab := mixBase(200)
	cfg := DefaultMixConfig()
	a := NewMixGenerator(tab, 9, cfg)
	b := NewMixGenerator(tab, 9, cfg)
	for i := 0; i < 500; i++ {
		oa, ob := a.Next(), b.Next()
		if oa.Kind != ob.Kind {
			t.Fatalf("op %d: kinds %v vs %v", i, oa.Kind, ob.Kind)
		}
	}
}

func TestMixGeneratorPerturbTargetsColumns(t *testing.T) {
	tab := mixBase(300)
	g := NewMixGenerator(tab, 3, MixConfig{
		InsertWeight: 1, OutlierFrac: 1, PerturbCols: []int{1},
	})
	// Every op is an insert with column 1 perturbed: far from 2·x.
	perturbed := 0
	for i := 0; i < 200; i++ {
		op := g.Next()
		if op.Kind != OpInsert {
			t.Fatalf("op %d is %v, want insert", i, op.Kind)
		}
		if diff := op.Row[1] - 2*op.Row[0]; diff > 150 || diff < -150 {
			perturbed++
		}
	}
	// A re-perturbed copy of an earlier outlier can land back near the
	// line, so demand a strong majority rather than every row.
	if perturbed < 150 {
		t.Fatalf("only %d/200 inserts perturbed on the dependent column", perturbed)
	}
}

func TestMixGeneratorEmptyPoolFallsBackToInsert(t *testing.T) {
	tab := mixBase(3)
	g := NewMixGenerator(tab, 5, MixConfig{DeleteWeight: 1})
	deletes, inserts := 0, 0
	for i := 0; i < 20; i++ {
		op := g.Next()
		switch op.Kind {
		case OpDelete:
			deletes++
		case OpInsert:
			// Pool was empty: the fallback insert must be valid.
			if len(op.Row) != 2 {
				t.Fatalf("fallback insert row %v", op.Row)
			}
			inserts++
		default:
			t.Fatalf("unexpected kind %v", op.Kind)
		}
		if g.LiveLen() < 0 || g.LiveLen() > 3 {
			t.Fatalf("op %d: live pool %d rows", i, g.LiveLen())
		}
	}
	if deletes < 3 || inserts == 0 {
		t.Fatalf("deletes=%d inserts=%d: empty-pool fallback never fired", deletes, inserts)
	}
}
