// Package workload generates the query sets of the paper's evaluation
// (§8.1.2): range queries built by picking a random record, finding its K
// nearest records, and taking the per-dimension min/max of that
// neighbourhood; point queries (degenerate rectangles); and
// selectivity-targeted rectangles for the Figure 7 sweep.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/coax-index/coax/internal/dataset"
	"github.com/coax-index/coax/internal/index"
	"github.com/coax-index/coax/internal/stats"
)

// Generator produces query rectangles over one table. It precomputes
// per-column scales so that nearest-neighbour distances are comparable
// across dimensions with wildly different units (ids vs. degrees).
type Generator struct {
	t      *dataset.Table
	rng    *rand.Rand
	scale  []float64 // 1/range per column
	sorted [][]float64
}

// NewGenerator creates a generator over t seeded deterministically.
func NewGenerator(t *dataset.Table, seed int64) *Generator {
	g := &Generator{t: t, rng: rand.New(rand.NewSource(seed))}
	g.scale = make([]float64, t.Dims())
	for c := 0; c < t.Dims(); c++ {
		col := t.Column(c)
		min, max := stats.MinMax(col)
		if max > min {
			g.scale[c] = 1 / (max - min)
		}
		sort.Float64s(col)
		g.sorted = append(g.sorted, col)
	}
	return g
}

// PointQueries returns count point queries drawn from random records, so
// every point query matches at least one row (the paper draws queries
// "randomly from each dataset").
func (g *Generator) PointQueries(count int) []index.Rect {
	out := make([]index.Rect, count)
	for i := range out {
		out[i] = index.Point(g.t.Row(g.rng.Intn(g.t.Len())))
	}
	return out
}

// KNNRects returns count range queries, each the bounding rectangle of the
// k records nearest (normalised Euclidean) to a randomly chosen seed
// record. For tables larger than maxExact rows the neighbourhood is
// computed on a uniform sample with k scaled proportionally, which keeps
// the rectangle's expected data volume unchanged.
func (g *Generator) KNNRects(count, k int) []index.Rect {
	const maxExact = 200000
	n := g.t.Len()
	sampleIdx := []int(nil)
	effK := k
	if n > maxExact {
		sampleIdx = stats.SampleIndices(n, maxExact, g.rng)
		effK = int(float64(k) * float64(maxExact) / float64(n))
		if effK < 2 {
			effK = 2
		}
	}
	out := make([]index.Rect, count)
	for i := range out {
		seed := g.t.Row(g.rng.Intn(n))
		out[i] = g.knnRect(seed, effK, sampleIdx)
	}
	return out
}

type distRow struct {
	d   float64
	idx int
}

func (g *Generator) knnRect(seed []float64, k int, sampleIdx []int) index.Rect {
	dims := g.t.Dims()
	var cand []distRow
	add := func(ri int) {
		row := g.t.Row(ri)
		d := 0.0
		for c := 0; c < dims; c++ {
			dv := (row[c] - seed[c]) * g.scale[c]
			d += dv * dv
		}
		cand = append(cand, distRow{d: d, idx: ri})
	}
	if sampleIdx != nil {
		cand = make([]distRow, 0, len(sampleIdx))
		for _, ri := range sampleIdx {
			add(ri)
		}
	} else {
		cand = make([]distRow, 0, g.t.Len())
		for ri := 0; ri < g.t.Len(); ri++ {
			add(ri)
		}
	}
	if k > len(cand) {
		k = len(cand)
	}
	// Partial selection of the k nearest.
	sort.Slice(cand, func(a, b int) bool { return cand[a].d < cand[b].d })
	r := index.NewRect(seed, seed)
	for _, c := range cand[:k] {
		row := g.t.Row(c.idx)
		for d := 0; d < dims; d++ {
			if row[d] < r.Min[d] {
				r.Min[d] = row[d]
			}
			if row[d] > r.Max[d] {
				r.Max[d] = row[d]
			}
		}
	}
	return r
}

// SelectivityRects returns count rectangles each matching approximately
// target rows (the Figure 7 workload). Around a random seed record, every
// dimension receives a quantile window sized so the product of marginal
// selectivities hits the target; correlations between columns make the true
// count deviate, which mirrors how real rectangles behave.
func (g *Generator) SelectivityRects(count, target int) ([]index.Rect, error) {
	n := g.t.Len()
	if target < 1 || target > n {
		return nil, fmt.Errorf("workload: target %d out of range [1,%d]", target, n)
	}
	dims := g.t.Dims()
	frac := float64(target) / float64(n)
	perDim := math.Pow(frac, 1/float64(dims))

	out := make([]index.Rect, count)
	for i := range out {
		seed := g.t.Row(g.rng.Intn(n))
		r := index.Full(dims)
		for d := 0; d < dims; d++ {
			col := g.sorted[d]
			pos := sort.SearchFloat64s(col, seed[d])
			half := int(perDim * float64(n) / 2)
			lo := pos - half
			hi := pos + half
			if lo < 0 {
				hi -= lo
				lo = 0
			}
			if hi > n-1 {
				lo -= hi - (n - 1)
				hi = n - 1
				if lo < 0 {
					lo = 0
				}
			}
			r.Min[d] = col[lo]
			r.Max[d] = col[hi]
		}
		out[i] = r
	}
	return out, nil
}

// RandRect returns one random rectangle over t for randomised testing:
// each dimension is independently left unconstrained (35%) or bounded by
// the ordered values of two random rows, so rectangles range from full
// scans to empty slivers while always lying inside the data's support.
func RandRect(rng *rand.Rand, t *dataset.Table) index.Rect {
	r := index.Full(t.Dims())
	for d := 0; d < t.Dims(); d++ {
		if rng.Float64() < 0.35 {
			continue
		}
		a := t.Row(rng.Intn(t.Len()))[d]
		b := t.Row(rng.Intn(t.Len()))[d]
		if a > b {
			a, b = b, a
		}
		r.Min[d], r.Max[d] = a, b
	}
	return r
}

// PartialRects generates count rectangles that constrain only the listed
// dimensions (others unbounded), each constrained dimension getting the
// quantile window [center−width/2, center+width/2] around a random seed.
// Used to exercise queries that target dependent attributes only.
func (g *Generator) PartialRects(count int, dims []int, widthFrac float64) []index.Rect {
	n := g.t.Len()
	out := make([]index.Rect, count)
	for i := range out {
		seed := g.t.Row(g.rng.Intn(n))
		r := index.Full(g.t.Dims())
		for _, d := range dims {
			col := g.sorted[d]
			pos := sort.SearchFloat64s(col, seed[d])
			half := int(widthFrac * float64(n) / 2)
			lo := pos - half
			hi := pos + half
			if lo < 0 {
				lo = 0
			}
			if hi > n-1 {
				hi = n - 1
			}
			r.Min[d] = col[lo]
			r.Max[d] = col[hi]
		}
		out[i] = r
	}
	return out
}
