package workload

import (
	"fmt"
	"math/rand"

	"github.com/coax-index/coax/internal/dataset"
	"github.com/coax-index/coax/internal/index"
	"github.com/coax-index/coax/internal/stats"
)

// Mixed read/write workloads. MixGenerator produces a random interleaving
// of Insert/Delete/Update/Query operations over a base table while
// maintaining the live multiset those operations imply — so the same
// generator both drives an index and serves as its correctness oracle (the
// property tests scan LiveView through internal/scan) and powers the
// mutation-mix serving benchmark (cmd/coaxserve mutbench).

// OpKind is one mixed-workload operation type.
type OpKind int

const (
	OpQuery OpKind = iota
	OpInsert
	OpDelete
	OpUpdate
)

func (k OpKind) String() string {
	switch k {
	case OpQuery:
		return "query"
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpUpdate:
		return "update"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// MixOp is one generated operation. Row is set for inserts and deletes,
// Old/New for updates, Rect for queries; all slices are owned by the
// caller (never aliased by the generator's pool).
type MixOp struct {
	Kind     OpKind
	Row      []float64
	Old, New []float64
	Rect     index.Rect
}

// MixConfig sets the operation mix. Weights are relative (they need not
// sum to 1); a weight of 0 disables that operation.
type MixConfig struct {
	InsertWeight float64
	DeleteWeight float64
	UpdateWeight float64
	QueryWeight  float64
	// OutlierFrac is the fraction of inserted (and update-replacement)
	// rows that receive a large single-column perturbation — typically
	// violating a learned soft FD and landing in the outlier partition,
	// which is how a workload induces model drift. The rest are exact
	// duplicates of random live rows, so their inlier/outlier
	// classification matches the data distribution.
	OutlierFrac float64
	// PerturbCols restricts which column the perturbation lands on; empty
	// means any column. Callers that know the detected dependencies pass
	// the dependent columns here so every perturbed row is a certain model
	// violator.
	PerturbCols []int
}

// DefaultMixConfig returns an even read/write split with a modest
// drift-inducing outlier fraction.
func DefaultMixConfig() MixConfig {
	return MixConfig{
		InsertWeight: 1,
		DeleteWeight: 1,
		UpdateWeight: 1,
		QueryWeight:  3,
		OutlierFrac:  0.1,
	}
}

// MixGenerator produces a deterministic stream of mixed operations over an
// evolving live multiset seeded from a base table. Not safe for concurrent
// use: one goroutine owns the stream (concurrency is exercised by what the
// caller does with the ops, not by the generator).
type MixGenerator struct {
	cfg    MixConfig
	rng    *rand.Rand
	dims   int
	cols   []string
	live   []float64 // flattened row-major live multiset
	lo, hi []float64 // per-column bounds of the base table (perturbation scale)
	totalW float64
}

// NewMixGenerator seeds a generator with the rows of t (copied).
func NewMixGenerator(t *dataset.Table, seed int64, cfg MixConfig) *MixGenerator {
	g := &MixGenerator{
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(seed)),
		dims: t.Dims(),
		cols: append([]string(nil), t.Cols...),
		live: append([]float64(nil), t.Data...),
		lo:   make([]float64, t.Dims()),
		hi:   make([]float64, t.Dims()),
	}
	for c := 0; c < t.Dims(); c++ {
		g.lo[c], g.hi[c] = stats.MinMax(t.Column(c))
	}
	g.totalW = cfg.InsertWeight + cfg.DeleteWeight + cfg.UpdateWeight + cfg.QueryWeight
	return g
}

// LiveLen reports the current live row count.
func (g *MixGenerator) LiveLen() int { return len(g.live) / g.dims }

// LiveView returns a table aliasing the live multiset — the oracle input
// for property tests. The view is valid only until the next Next call.
func (g *MixGenerator) LiveView() *dataset.Table {
	return dataset.View(g.cols, g.live)
}

// Next produces the next operation and applies its effect to the live
// multiset. Deletes and updates fall back to inserts when the multiset is
// empty.
func (g *MixGenerator) Next() MixOp {
	w := g.rng.Float64() * g.totalW
	switch {
	case w < g.cfg.QueryWeight:
		return g.nextQuery()
	case w < g.cfg.QueryWeight+g.cfg.InsertWeight:
		return g.nextInsert()
	case w < g.cfg.QueryWeight+g.cfg.InsertWeight+g.cfg.DeleteWeight:
		return g.nextDelete()
	default:
		return g.nextUpdate()
	}
}

func (g *MixGenerator) nextQuery() MixOp {
	n := g.LiveLen()
	r := index.Full(g.dims)
	if n > 0 {
		// Same shape as RandRect: each dimension independently left
		// unconstrained or bounded by the ordered values of two random
		// live rows.
		for d := 0; d < g.dims; d++ {
			if g.rng.Float64() < 0.35 {
				continue
			}
			a := g.live[g.rng.Intn(n)*g.dims+d]
			b := g.live[g.rng.Intn(n)*g.dims+d]
			if a > b {
				a, b = b, a
			}
			r.Min[d], r.Max[d] = a, b
		}
	}
	return MixOp{Kind: OpQuery, Rect: r}
}

func (g *MixGenerator) nextInsert() MixOp {
	row := g.newRow()
	g.live = append(g.live, row...)
	return MixOp{Kind: OpInsert, Row: row}
}

func (g *MixGenerator) nextDelete() MixOp {
	n := g.LiveLen()
	if n == 0 {
		return g.nextInsert()
	}
	i := g.rng.Intn(n)
	row := make([]float64, g.dims)
	copy(row, g.live[i*g.dims:(i+1)*g.dims])
	g.removeAt(i, n)
	return MixOp{Kind: OpDelete, Row: row}
}

func (g *MixGenerator) nextUpdate() MixOp {
	n := g.LiveLen()
	if n == 0 {
		return g.nextInsert()
	}
	i := g.rng.Intn(n)
	old := make([]float64, g.dims)
	copy(old, g.live[i*g.dims:(i+1)*g.dims])
	repl := g.newRow()
	copy(g.live[i*g.dims:(i+1)*g.dims], repl)
	return MixOp{Kind: OpUpdate, Old: old, New: repl}
}

// removeAt swap-removes live row i (multiset semantics: order is free).
func (g *MixGenerator) removeAt(i, n int) {
	last := (n - 1) * g.dims
	copy(g.live[i*g.dims:(i+1)*g.dims], g.live[last:last+g.dims])
	g.live = g.live[:last]
}

// newRow duplicates a random live row (classification-neutral) and, with
// probability OutlierFrac, perturbs one column by one to three column
// ranges — far enough outside any learned margin to land in the outlier
// partition. With an empty multiset it synthesises a row at the base
// table's column midpoints.
func (g *MixGenerator) newRow() []float64 {
	row := make([]float64, g.dims)
	if n := g.LiveLen(); n > 0 {
		copy(row, g.live[g.rng.Intn(n)*g.dims:])
	} else {
		for d := range row {
			row[d] = (g.lo[d] + g.hi[d]) / 2
		}
	}
	if g.rng.Float64() < g.cfg.OutlierFrac {
		d := g.perturbCol()
		span := g.hi[d] - g.lo[d]
		if span <= 0 {
			span = 1
		}
		off := (1 + 2*g.rng.Float64()) * span
		if g.rng.Intn(2) == 0 {
			off = -off
		}
		row[d] += off
	}
	return row
}

func (g *MixGenerator) perturbCol() int {
	if len(g.cfg.PerturbCols) > 0 {
		return g.cfg.PerturbCols[g.rng.Intn(len(g.cfg.PerturbCols))]
	}
	return g.rng.Intn(g.dims)
}
